//! Liveness-driven graph-coloring register allocation.
//!
//! Both targets share one software convention over the WM's two 32-register
//! files: `r31`/`f31` are hard-wired zero, `r30` is the stack pointer,
//! `r0`/`r1`/`f0`/`f1` are the FIFO-mapped cells, arguments travel in
//! `r2..r7`/`f2..f7` and the return value comes back in `r2`/`f2`. That
//! leaves `r2..r29` (and likewise `f2..f29`) allocatable.
//!
//! Allocation proceeds in three phases:
//!
//! 1. **Convention lowering** — parameters are copied out of the argument
//!    registers, call arguments are marshalled into them, and every virtual
//!    register live across a call is saved to a stack slot and reloaded
//!    after the call (the machines share a single global register file, so
//!    a callee clobbers everything it touches; splitting the live ranges at
//!    call sites makes that safe without callee-save bookkeeping).
//! 2. **Coloring** — a Chaitin-style simplify/select loop with Briggs
//!    optimistic spilling over the interference graph built from liveness.
//!    Physical registers act as precolored nodes. Uncolorable registers are
//!    spilled everywhere (reload before each use, store after each def) and
//!    the loop retries.
//! 3. **Frame code** — once the final frame size (locals plus spill slots)
//!    is known, the prologue decrements the stack pointer at function entry
//!    and an epilogue restores it before every return.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

use wm_ir::{
    BinOp, DataFifo, Function, Inst, InstKind, MemRef, Operand, RExpr, Reg, RegClass, Width,
    FIRST_ARG_REG, NUM_ARG_REGS, SP_REG,
};
use wm_opt::liveness::{defs_of, tracked, uses_of, Liveness};

/// Which instruction set the allocated code will execute on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// The WM access/execute machine: spills travel through the FIFOs.
    Wm,
    /// The 1990 scalar machines of Table I: spills are generic accesses.
    Scalar,
}

/// Why allocation failed. The driver surfaces this instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// More arguments of one class than the convention has registers for.
    TooManyArgs {
        /// Function being allocated (or containing the offending call).
        function: String,
        /// Register class that overflowed.
        class: RegClass,
        /// Number of arguments of that class.
        count: usize,
    },
    /// Spilling failed to make the function colorable.
    OutOfRegisters {
        /// Function being allocated.
        function: String,
        /// Register class that could not be colored.
        class: RegClass,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::TooManyArgs {
                function,
                class,
                count,
            } => write!(
                f,
                "{function}: {count} {class} arguments exceed the {NUM_ARG_REGS} argument registers"
            ),
            AllocError::OutOfRegisters { function, class } => {
                write!(f, "{function}: ran out of {class} registers while spilling")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Lowest allocatable register number (`r2`/`f2`).
const FIRST_ALLOC: u8 = FIRST_ARG_REG;
/// Highest allocatable register number (`r29`/`f29`).
const LAST_ALLOC: u8 = SP_REG - 1;
/// Colors per class.
const NUM_COLORS: usize = (LAST_ALLOC - FIRST_ALLOC + 1) as usize;

/// Allocate `func`'s virtual registers onto the architected files of
/// `target`, lowering the call convention and emitting frame code.
pub fn allocate_registers(func: &mut Function, target: TargetKind) -> Result<(), AllocError> {
    let mut slots = SpillSlots::default();
    lower_conventions(func, target, &mut slots)?;
    color_and_rewrite(func, target, &mut slots)?;
    add_frame_code(func);
    Ok(())
}

/// Stack-slot assignment for saved/spilled registers (one 8-byte slot per
/// register, allocated past the function's locals).
#[derive(Default)]
struct SpillSlots {
    offsets: HashMap<Reg, i64>,
}

impl SpillSlots {
    fn offset(&mut self, func: &mut Function, r: Reg) -> i64 {
        *self.offsets.entry(r).or_insert_with(|| {
            let off = func.frame_size;
            func.frame_size += 8;
            off
        })
    }
}

fn sp_plus(off: i64) -> RExpr {
    RExpr::Bin(BinOp::Add, Operand::Reg(Reg::sp()), Operand::Imm(off))
}

/// Store `r` to its stack slot. On the WM a store is an enqueue paired
/// with an address computation; an 8-byte slot holds either class (the
/// memory image stores both as 8 little-endian bytes).
fn emit_save(func: &mut Function, out: &mut Vec<Inst>, target: TargetKind, r: Reg, off: i64) {
    match target {
        TargetKind::Wm => {
            push_new(
                func,
                out,
                InstKind::Assign {
                    dst: Reg::phys(r.class, 0),
                    src: RExpr::Op(Operand::Reg(r)),
                },
            );
            push_new(
                func,
                out,
                InstKind::WStore {
                    unit: r.class,
                    addr: sp_plus(off),
                    width: Width::D8,
                },
            );
        }
        TargetKind::Scalar => {
            push_new(
                func,
                out,
                InstKind::GStore {
                    src: Operand::Reg(r),
                    mem: MemRef::base(Reg::sp(), off, Width::D8),
                },
            );
        }
    }
}

/// Reload `r` from its stack slot.
fn emit_reload(func: &mut Function, out: &mut Vec<Inst>, target: TargetKind, r: Reg, off: i64) {
    match target {
        TargetKind::Wm => {
            push_new(
                func,
                out,
                InstKind::WLoad {
                    fifo: DataFifo::new(r.class, 0),
                    addr: sp_plus(off),
                    width: Width::D8,
                },
            );
            push_new(
                func,
                out,
                InstKind::Assign {
                    dst: r,
                    src: RExpr::Op(Operand::Reg(Reg::phys(r.class, 0))),
                },
            );
        }
        TargetKind::Scalar => {
            push_new(
                func,
                out,
                InstKind::GLoad {
                    dst: r,
                    mem: MemRef::base(Reg::sp(), off, Width::D8),
                },
            );
        }
    }
}

fn push_new(func: &mut Function, out: &mut Vec<Inst>, kind: InstKind) {
    let id = func.new_inst_id();
    out.push(Inst { id, kind });
}

fn class_slot(class: RegClass) -> usize {
    match class {
        RegClass::Int => 0,
        RegClass::Flt => 1,
    }
}

/// Phase 1: lower parameters, call sites and returns onto the argument
/// register convention, saving virtuals that live across calls.
fn lower_conventions(
    func: &mut Function,
    target: TargetKind,
    slots: &mut SpillSlots,
) -> Result<(), AllocError> {
    // Spill slots are doubles; round the local area up to keep them aligned.
    func.frame_size = (func.frame_size + 7) & !7;

    // Copy incoming arguments out of the convention registers so their
    // live ranges end immediately and r2../f2.. stay allocatable.
    let params = func.params.clone();
    let mut counts = [0u8; 2];
    let mut copies = Vec::new();
    for p in params {
        let n = counts[class_slot(p.class)];
        counts[class_slot(p.class)] += 1;
        if n >= NUM_ARG_REGS {
            return Err(AllocError::TooManyArgs {
                function: func.name.clone(),
                class: p.class,
                count: counts[class_slot(p.class)] as usize,
            });
        }
        if p.is_virt() {
            copies.push(InstKind::Assign {
                dst: p,
                src: RExpr::Op(Operand::Reg(Reg::phys(p.class, FIRST_ARG_REG + n))),
            });
        }
    }
    if !func.blocks.is_empty() {
        let entry = func.entry_label();
        for (i, copy) in copies.into_iter().enumerate() {
            let id = func.new_inst_id();
            func.block_mut(entry)
                .insts
                .insert(i, Inst { id, kind: copy });
        }
    }

    let liveness = Liveness::compute(func);
    let ret_reg = func.ret;
    for bi in 0..func.blocks.len() {
        let needs_work = func.blocks[bi]
            .insts
            .iter()
            .any(|i| matches!(i.kind, InstKind::Call { .. } | InstKind::Ret));
        if !needs_work {
            continue;
        }
        let live_after = liveness.live_after(func, bi);
        let insts = std::mem::take(&mut func.blocks[bi].insts);
        let mut out = Vec::with_capacity(insts.len() + 8);
        for (ii, inst) in insts.into_iter().enumerate() {
            let Inst { id, kind } = inst;
            match kind {
                InstKind::Call { callee, args, ret } => {
                    // Save every virtual live across the call: the callee
                    // shares the register file and clobbers freely.
                    let mut across: Vec<Reg> = live_after[ii]
                        .iter()
                        .copied()
                        .filter(|r| r.is_virt() && Some(*r) != ret)
                        .collect();
                    across.sort();
                    for &r in &across {
                        let off = slots.offset(func, r);
                        emit_save(func, &mut out, target, r, off);
                    }
                    // Marshal arguments into the convention registers.
                    let mut counts = [0u8; 2];
                    let mut phys_args = Vec::with_capacity(args.len());
                    for a in args {
                        let n = counts[class_slot(a.class)];
                        counts[class_slot(a.class)] += 1;
                        if n >= NUM_ARG_REGS {
                            return Err(AllocError::TooManyArgs {
                                function: func.name.clone(),
                                class: a.class,
                                count: counts[class_slot(a.class)] as usize,
                            });
                        }
                        let dst = Reg::phys(a.class, FIRST_ARG_REG + n);
                        if a != dst {
                            push_new(
                                func,
                                &mut out,
                                InstKind::Assign {
                                    dst,
                                    src: RExpr::Op(Operand::Reg(a)),
                                },
                            );
                        }
                        phys_args.push(dst);
                    }
                    let phys_ret = ret.map(|r| Reg::phys(r.class, FIRST_ARG_REG));
                    out.push(Inst {
                        id,
                        kind: InstKind::Call {
                            callee,
                            args: phys_args,
                            ret: phys_ret,
                        },
                    });
                    if let Some(r) = ret {
                        if r.is_virt() {
                            push_new(
                                func,
                                &mut out,
                                InstKind::Assign {
                                    dst: r,
                                    src: RExpr::Op(Operand::Reg(Reg::phys(r.class, FIRST_ARG_REG))),
                                },
                            );
                        }
                    }
                    for &r in &across {
                        let off = slots.offset(func, r);
                        emit_reload(func, &mut out, target, r, off);
                    }
                }
                InstKind::Ret => {
                    if let Some(rv) = ret_reg {
                        if rv.is_virt() {
                            push_new(
                                func,
                                &mut out,
                                InstKind::Assign {
                                    dst: Reg::phys(rv.class, FIRST_ARG_REG),
                                    src: RExpr::Op(Operand::Reg(rv)),
                                },
                            );
                        }
                    }
                    out.push(Inst {
                        id,
                        kind: InstKind::Ret,
                    });
                }
                other => out.push(Inst { id, kind: other }),
            }
        }
        func.blocks[bi].insts = out;
    }
    if let Some(rv) = func.ret {
        if rv.is_virt() {
            func.ret = Some(Reg::phys(rv.class, FIRST_ARG_REG));
        }
    }
    Ok(())
}

/// Phase 2: iterate build → simplify → select → (spill) until every
/// virtual register has a color, then rewrite the function.
fn color_and_rewrite(
    func: &mut Function,
    target: TargetKind,
    slots: &mut SpillSlots,
) -> Result<(), AllocError> {
    // Temporaries introduced by spilling: picking one of these to spill
    // again means spilling cannot converge.
    let mut spill_temps: HashSet<Reg> = HashSet::new();
    // Registers carrying spill slots already (their remaining ranges are
    // single instructions, so re-spilling them is equally hopeless).
    let mut spilled: HashSet<Reg> = HashSet::new();
    loop {
        match try_color(func) {
            Ok(assignment) => {
                apply_assignment(func, &assignment);
                return Ok(());
            }
            Err(to_spill) => {
                for r in &to_spill {
                    if spill_temps.contains(r) || spilled.contains(r) {
                        return Err(AllocError::OutOfRegisters {
                            function: func.name.clone(),
                            class: r.class,
                        });
                    }
                }
                spilled.extend(to_spill.iter().copied());
                spill_everywhere(func, target, slots, &to_spill, &mut spill_temps);
            }
        }
    }
}

/// One build/simplify/select round. Returns the coloring, or the registers
/// chosen for spilling.
fn try_color(func: &Function) -> Result<HashMap<Reg, u8>, Vec<Reg>> {
    let liveness = Liveness::compute(func);

    // Interference graph over virtual registers; physical neighbors become
    // forbidden colors. Only same-class registers interfere (the two
    // register files are disjoint).
    let mut nodes: BTreeSet<Reg> = BTreeSet::new();
    let mut adj: BTreeMap<Reg, BTreeSet<Reg>> = BTreeMap::new();
    let mut forbidden: BTreeMap<Reg, BTreeSet<u8>> = BTreeMap::new();

    for block in &func.blocks {
        for inst in &block.insts {
            for r in defs_of(&inst.kind)
                .into_iter()
                .chain(uses_of(&inst.kind, func))
            {
                if r.is_virt() {
                    nodes.insert(r);
                }
            }
        }
    }

    for bi in 0..func.blocks.len() {
        let live_after = liveness.live_after(func, bi);
        for (ii, inst) in func.blocks[bi].insts.iter().enumerate() {
            let move_src = match &inst.kind {
                InstKind::Assign { src, .. } => src.as_copy(),
                _ => None,
            };
            for d in defs_of(&inst.kind) {
                if !tracked(d) {
                    continue;
                }
                for &l in &live_after[ii] {
                    if l == d || l.class != d.class {
                        continue;
                    }
                    // A copy's destination may share the source's register.
                    if Some(l) == move_src {
                        continue;
                    }
                    match (d.is_virt(), l.is_virt()) {
                        (true, true) => {
                            adj.entry(d).or_default().insert(l);
                            adj.entry(l).or_default().insert(d);
                            nodes.insert(d);
                            nodes.insert(l);
                        }
                        (true, false) => {
                            if let Some(n) = l.phys_num() {
                                forbidden.entry(d).or_default().insert(n);
                            }
                        }
                        (false, true) => {
                            if let Some(n) = d.phys_num() {
                                forbidden.entry(l).or_default().insert(n);
                            }
                        }
                        (false, false) => {}
                    }
                }
            }
        }
    }

    // Simplify: repeatedly remove a trivially colorable node; when none
    // exists push the highest-degree node anyway (Briggs optimism).
    let mut degree: BTreeMap<Reg, usize> = nodes
        .iter()
        .map(|r| (*r, adj.get(r).map_or(0, BTreeSet::len)))
        .collect();
    let mut in_graph = nodes.clone();
    let mut stack: Vec<Reg> = Vec::with_capacity(nodes.len());
    while !in_graph.is_empty() {
        let pick = in_graph
            .iter()
            .copied()
            .find(|r| degree[r] < NUM_COLORS)
            .unwrap_or_else(|| {
                in_graph
                    .iter()
                    .copied()
                    .max_by_key(|r| degree[r])
                    .expect("non-empty graph")
            });
        in_graph.remove(&pick);
        stack.push(pick);
        if let Some(ns) = adj.get(&pick) {
            for n in ns {
                if in_graph.contains(n) {
                    *degree.get_mut(n).expect("neighbor tracked") -= 1;
                }
            }
        }
    }

    // Select: color in reverse simplification order.
    let mut assignment: HashMap<Reg, u8> = HashMap::new();
    let mut failed: Vec<Reg> = Vec::new();
    while let Some(r) = stack.pop() {
        let mut used: BTreeSet<u8> = forbidden.get(&r).cloned().unwrap_or_default();
        if let Some(ns) = adj.get(&r) {
            for n in ns {
                if let Some(&c) = assignment.get(n) {
                    used.insert(c);
                }
            }
        }
        match (FIRST_ALLOC..=LAST_ALLOC).find(|c| !used.contains(c)) {
            Some(c) => {
                assignment.insert(r, c);
            }
            None => failed.push(r),
        }
    }
    if failed.is_empty() {
        Ok(assignment)
    } else {
        Err(failed)
    }
}

/// Rewrite every occurrence of a colored virtual register.
fn apply_assignment(func: &mut Function, assignment: &HashMap<Reg, u8>) {
    let map = |r: Reg| match assignment.get(&r) {
        Some(&c) => Reg::phys(r.class, c),
        None => r,
    };
    for block in &mut func.blocks {
        for inst in &mut block.insts {
            map_inst_regs(&mut inst.kind, &map);
        }
    }
    for p in &mut func.params {
        *p = map(*p);
    }
    if let Some(r) = func.ret {
        func.ret = Some(map(r));
    }
}

/// Spill the given registers everywhere: a fresh temporary per instruction,
/// reloaded before uses and stored after definitions.
fn spill_everywhere(
    func: &mut Function,
    target: TargetKind,
    slots: &mut SpillSlots,
    regs: &[Reg],
    spill_temps: &mut HashSet<Reg>,
) {
    let set: HashSet<Reg> = regs.iter().copied().collect();
    for bi in 0..func.blocks.len() {
        let touches = func.blocks[bi].insts.iter().any(|i| {
            defs_of(&i.kind)
                .into_iter()
                .chain(i.kind.uses())
                .any(|r| set.contains(&r))
        });
        if !touches {
            continue;
        }
        let insts = std::mem::take(&mut func.blocks[bi].insts);
        let mut out = Vec::with_capacity(insts.len() + 8);
        for mut inst in insts {
            let used: BTreeSet<Reg> = inst
                .kind
                .uses()
                .into_iter()
                .filter(|r| set.contains(r))
                .collect();
            let defined: BTreeSet<Reg> = defs_of(&inst.kind)
                .into_iter()
                .filter(|r| set.contains(r))
                .collect();
            if used.is_empty() && defined.is_empty() {
                out.push(inst);
                continue;
            }
            let mut temps: HashMap<Reg, Reg> = HashMap::new();
            for &r in used.iter().chain(defined.iter()) {
                temps.entry(r).or_insert_with(|| {
                    let t = func.new_vreg(r.class);
                    spill_temps.insert(t);
                    t
                });
            }
            for &r in &used {
                let off = slots.offset(func, r);
                emit_reload(func, &mut out, target, temps[&r], off);
            }
            map_inst_regs(&mut inst.kind, &|r| temps.get(&r).copied().unwrap_or(r));
            out.push(inst);
            for &r in &defined {
                let off = slots.offset(func, r);
                emit_save(func, &mut out, target, temps[&r], off);
            }
        }
        func.blocks[bi].insts = out;
    }
}

/// Phase 3: prologue/epilogue once the frame (locals + slots) is final.
fn add_frame_code(func: &mut Function) {
    func.frame_size = (func.frame_size + 7) & !7;
    let total = func.frame_size;
    if total == 0 || func.blocks.is_empty() {
        return;
    }
    let entry = func.entry_label();
    let id = func.new_inst_id();
    func.block_mut(entry).insts.insert(
        0,
        Inst {
            id,
            kind: InstKind::Assign {
                dst: Reg::sp(),
                src: RExpr::Bin(BinOp::Sub, Operand::Reg(Reg::sp()), Operand::Imm(total)),
            },
        },
    );
    for bi in 0..func.blocks.len() {
        let rets: Vec<usize> = func.blocks[bi]
            .insts
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i.kind, InstKind::Ret))
            .map(|(i, _)| i)
            .collect();
        for pos in rets.into_iter().rev() {
            let id = func.new_inst_id();
            func.blocks[bi].insts.insert(
                pos,
                Inst {
                    id,
                    kind: InstKind::Assign {
                        dst: Reg::sp(),
                        src: RExpr::Bin(BinOp::Add, Operand::Reg(Reg::sp()), Operand::Imm(total)),
                    },
                },
            );
        }
    }
}

/// Apply `map` to every register the instruction reads or writes.
fn map_inst_regs(kind: &mut InstKind, map: &impl Fn(Reg) -> Reg) {
    let map_op = |o: &mut Operand| {
        if let Operand::Reg(r) = o {
            *r = map(*r);
        }
    };
    let map_expr = |e: &mut RExpr| match e {
        RExpr::Op(a) | RExpr::Un(_, a) => map_op(a),
        RExpr::Bin(_, a, b) => {
            map_op(a);
            map_op(b);
        }
        RExpr::Dual { a, b, c, .. } => {
            map_op(a);
            map_op(b);
            map_op(c);
        }
    };
    let map_mem = |m: &mut MemRef| {
        if let Some(b) = &mut m.base {
            *b = map(*b);
        }
        if let Some((r, _)) = &mut m.index {
            *r = map(*r);
        }
    };
    match kind {
        InstKind::Assign { dst, src } => {
            *dst = map(*dst);
            map_expr(src);
        }
        InstKind::LoadAddr { dst, .. } => *dst = map(*dst),
        InstKind::Compare { a, b, .. } => {
            map_op(a);
            map_op(b);
        }
        InstKind::Call { args, ret, .. } => {
            for a in args {
                *a = map(*a);
            }
            if let Some(r) = ret {
                *r = map(*r);
            }
        }
        InstKind::GLoad { dst, mem } => {
            *dst = map(*dst);
            map_mem(mem);
        }
        InstKind::GStore { src, mem } => {
            map_op(src);
            map_mem(mem);
        }
        InstKind::WLoad { addr, .. } | InstKind::WStore { addr, .. } => map_expr(addr),
        InstKind::StreamIn {
            base,
            count,
            stride,
            ..
        }
        | InstKind::StreamOut {
            base,
            count,
            stride,
            ..
        } => {
            map_op(base);
            if let Some(c) = count {
                map_op(c);
            }
            map_op(stride);
        }
        InstKind::StreamGather {
            base,
            ibase,
            istride,
            count,
            ..
        }
        | InstKind::StreamScatter {
            base,
            ibase,
            istride,
            count,
            ..
        } => {
            map_op(base);
            map_op(ibase);
            map_op(istride);
            map_op(count);
        }
        InstKind::VStreamIn {
            base,
            count,
            stride,
            vectors,
            ..
        } => {
            map_op(base);
            map_op(count);
            map_op(stride);
            map_op(vectors);
        }
        InstKind::VStreamOut {
            base,
            count,
            stride,
        } => {
            map_op(base);
            map_op(count);
            map_op(stride);
        }
        InstKind::ChanSend { src, .. } => map_op(src),
        InstKind::ChanRecv { dst, .. } => *dst = map(*dst),
        InstKind::StreamSend { count, .. } | InstKind::StreamRecv { count, .. } => map_op(count),
        InstKind::Jump { .. }
        | InstKind::Branch { .. }
        | InstKind::BranchStream { .. }
        | InstKind::Ret
        | InstKind::StreamStop { .. }
        | InstKind::VLoad { .. }
        | InstKind::VStore { .. }
        | InstKind::VecBin { .. }
        | InstKind::VecBroadcast { .. }
        | InstKind::BranchVec { .. }
        | InstKind::Nop => {}
    }
}
