//! Scalar-target instruction selection: strength reduction of indexed
//! references and auto-increment addressing-mode selection.
//!
//! These are the two target-specific phases the paper credits for the
//! baseline quality of the 1990 scalar machines (Figure 6): the indexed
//! form `a[i]` — base + scaled index, which costs an index penalty on every
//! 1990 machine — becomes a pointer that advances by the element size, and
//! the pointer's advance then folds into the access as an auto-increment
//! addressing mode (`a@+` in the Figure 6 listing), making the bump free.

use wm_ir::{
    AutoMode, BinOp, Function, Inst, InstKind, MemRef, Operand, RExpr, Reg, RegClass, SymId, Width,
};
use wm_opt::affine::{LoopAnalysis, Region};
use wm_opt::cfg::{ensure_preheader, natural_loops, Dominators};
use wm_opt::phases::eliminate_dead_code;
use wm_opt::AliasModel;

/// The loop-invariant part of a strength-reduced address.
#[derive(Clone, Copy)]
enum Base {
    Sym(SymId),
    Reg(Reg),
}

/// One indexed reference to rewrite as a strided pointer.
struct Candidate {
    bi: usize,
    ii: usize,
    width: Width,
    base: Base,
    off: i64,
    iv: Reg,
    coeff: i64,
    stride: i64,
}

/// Replace indexed memory references in innermost loops with pointers that
/// advance by the reference's byte stride each iteration.
///
/// The affine analysis already proves each candidate's base region is
/// loop-invariant and its stride constant, so the rewrite is sound under
/// either alias model; `_alias` is accepted for pipeline-signature
/// symmetry with the streaming passes.
pub fn strength_reduce(func: &mut Function, _alias: AliasModel) {
    // Give every innermost loop a preheader to prime pointers in.
    // `ensure_preheader` appends blocks, so loop indices stay valid.
    {
        let dom = Dominators::compute(func);
        let loops = natural_loops(func, &dom);
        for lp in &loops {
            if lp.is_innermost(&loops) {
                ensure_preheader(func, lp);
            }
        }
    }

    let dom = Dominators::compute(func);
    let loops = natural_loops(func, &dom);
    let preds = func.predecessors();
    // (preheader block, candidates) per loop.
    let mut plans: Vec<(usize, Vec<Candidate>)> = Vec::new();
    for lp in &loops {
        if !lp.is_innermost(&loops) {
            continue;
        }
        let outside: Vec<usize> = preds[lp.header]
            .iter()
            .copied()
            .filter(|p| !lp.contains(*p))
            .collect();
        let [preheader] = outside[..] else { continue };
        let analysis = LoopAnalysis::new(func, lp, &dom);
        let mut cands = Vec::new();
        for &bi in &lp.blocks {
            // Only references that execute exactly once per iteration.
            if !lp.latches.iter().all(|&l| dom.dominates(bi, l)) {
                continue;
            }
            for (ii, inst) in func.blocks[bi].insts.iter().enumerate() {
                let mem = match &inst.kind {
                    InstKind::GLoad { mem, .. } | InstKind::GStore { mem, .. } => mem,
                    _ => continue,
                };
                if mem.index.is_none() || mem.auto != AutoMode::None {
                    continue;
                }
                let Some(aff) = analysis.eval_memref(mem, (bi, ii), 8) else {
                    continue;
                };
                let Some(iv) = aff.iv else { continue };
                if aff.inv.is_some() {
                    continue;
                }
                let Some(stride) = analysis.stride_of(&aff) else {
                    continue;
                };
                if stride == 0 {
                    continue;
                }
                let base = match aff.region {
                    Region::Global(s) => Base::Sym(s),
                    Region::Reg(r) => Base::Reg(r),
                    Region::Unknown => continue,
                };
                cands.push(Candidate {
                    bi,
                    ii,
                    width: mem.width,
                    base,
                    off: aff.off,
                    iv,
                    coeff: aff.coeff,
                    stride,
                });
            }
        }
        if !cands.is_empty() {
            plans.push((preheader, cands));
        }
    }

    let mut changed = false;
    for (preheader, mut cands) in plans {
        // Rewrite back-to-front so earlier indices stay valid.
        cands.sort_by_key(|c| std::cmp::Reverse((c.bi, c.ii)));
        for c in &cands {
            let p = prime_pointer(func, preheader, c);
            let mem = match &mut func.blocks[c.bi].insts[c.ii].kind {
                InstKind::GLoad { mem, .. } | InstKind::GStore { mem, .. } => mem,
                _ => unreachable!("candidate instruction changed shape"),
            };
            *mem = MemRef::base(p, 0, c.width);
            let id = func.new_inst_id();
            func.blocks[c.bi].insts.insert(
                c.ii + 1,
                Inst {
                    id,
                    kind: InstKind::Assign {
                        dst: p,
                        src: RExpr::Bin(BinOp::Add, Operand::Reg(p), Operand::Imm(c.stride)),
                    },
                },
            );
            changed = true;
        }
    }

    if changed {
        // The index computations feeding the rewritten references are
        // usually dead now.
        for _ in 0..8 {
            if !eliminate_dead_code(func) {
                break;
            }
        }
    }
}

/// Emit `p := base + off + coeff*iv` at the end of the preheader (before
/// its terminator) and return the fresh pointer register.
fn prime_pointer(func: &mut Function, preheader: usize, c: &Candidate) -> Reg {
    let mut code: Vec<InstKind> = Vec::new();
    let base_op = match c.base {
        Base::Sym(sym) => {
            let t = func.new_vreg(RegClass::Int);
            code.push(InstKind::LoadAddr {
                dst: t,
                sym,
                disp: c.off,
            });
            Operand::Reg(t)
        }
        Base::Reg(r) => {
            if c.off == 0 {
                Operand::Reg(r)
            } else {
                let t = func.new_vreg(RegClass::Int);
                code.push(InstKind::Assign {
                    dst: t,
                    src: RExpr::Bin(BinOp::Add, Operand::Reg(r), Operand::Imm(c.off)),
                });
                Operand::Reg(t)
            }
        }
    };
    let scaled = if c.coeff == 1 {
        Operand::Reg(c.iv)
    } else {
        let t = func.new_vreg(RegClass::Int);
        let src = if c.coeff > 1 && c.coeff.count_ones() == 1 {
            RExpr::Bin(
                BinOp::Shl,
                Operand::Reg(c.iv),
                Operand::Imm(i64::from(c.coeff.trailing_zeros())),
            )
        } else {
            RExpr::Bin(BinOp::Mul, Operand::Reg(c.iv), Operand::Imm(c.coeff))
        };
        code.push(InstKind::Assign { dst: t, src });
        Operand::Reg(t)
    };
    let p = func.new_vreg(RegClass::Int);
    code.push(InstKind::Assign {
        dst: p,
        src: RExpr::Bin(BinOp::Add, base_op, scaled),
    });

    let at = insertion_point(&func.blocks[preheader].insts);
    for (k, kind) in code.into_iter().enumerate() {
        let id = func.new_inst_id();
        func.blocks[preheader]
            .insts
            .insert(at + k, Inst { id, kind });
    }
    p
}

/// Index before a block's trailing terminator (or the block's end).
fn insertion_point(insts: &[Inst]) -> usize {
    match insts.last() {
        Some(last)
            if matches!(
                last.kind,
                InstKind::Jump { .. }
                    | InstKind::Branch { .. }
                    | InstKind::BranchStream { .. }
                    | InstKind::BranchVec { .. }
                    | InstKind::Ret
            ) =>
        {
            insts.len() - 1
        }
        _ => insts.len(),
    }
}

/// Fold a base-register bump that immediately follows (in execution, not
/// necessarily adjacency) a reference through that base into the access's
/// auto-increment/-decrement addressing mode — Figure 6's `a@+`.
///
/// Both modes update the base *after* the access on the scalar machines,
/// matching separate-increment semantics exactly, so the fold is legal
/// whenever the bump equals the access width and nothing between the
/// access and the bump touches the base register.
pub fn select_auto_increment(func: &mut Function) {
    let mut changed = false;
    for block in &mut func.blocks {
        for i in 0..block.insts.len() {
            let (base, width) = match &block.insts[i].kind {
                InstKind::GLoad { dst, mem } => {
                    let Some(b) = mem.base else { continue };
                    // The loaded value would be clobbered by the update.
                    if *dst == b || mem.auto != AutoMode::None {
                        continue;
                    }
                    (b, mem.width)
                }
                InstKind::GStore { mem, .. } => {
                    let Some(b) = mem.base else { continue };
                    if mem.auto != AutoMode::None {
                        continue;
                    }
                    (b, mem.width)
                }
                _ => continue,
            };
            let Some((j, mode)) = find_bump(&block.insts[i + 1..], base, width.bytes()) else {
                continue;
            };
            let j = i + 1 + j;
            match &mut block.insts[i].kind {
                InstKind::GLoad { mem, .. } | InstKind::GStore { mem, .. } => mem.auto = mode,
                _ => unreachable!(),
            }
            block.insts[j].kind = InstKind::Nop;
            changed = true;
        }
    }
    if changed {
        func.compact();
    }
}

/// Find `base := base ± bytes` in `insts` with no intervening use or
/// definition of `base`. Returns the offset and the matching mode.
fn find_bump(insts: &[Inst], base: Reg, bytes: i64) -> Option<(usize, AutoMode)> {
    for (j, inst) in insts.iter().enumerate() {
        if let InstKind::Assign { dst, src } = &inst.kind {
            if *dst == base {
                let mode = match src {
                    RExpr::Bin(BinOp::Add, Operand::Reg(r), Operand::Imm(k))
                    | RExpr::Bin(BinOp::Add, Operand::Imm(k), Operand::Reg(r))
                        if *r == base && *k == bytes =>
                    {
                        AutoMode::PostInc
                    }
                    RExpr::Bin(BinOp::Sub, Operand::Reg(r), Operand::Imm(k))
                        if *r == base && *k == bytes =>
                    {
                        AutoMode::PreDec
                    }
                    _ => return None,
                };
                return Some((j, mode));
            }
        }
        let touches = inst.kind.uses().contains(&base) || inst.kind.defs().contains(&base);
        if touches {
            return None;
        }
    }
    None
}
