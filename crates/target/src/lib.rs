//! Target-specific code expansion and register allocation.
//!
//! This crate is the back end of the reproduction's vpo-style pipeline. It
//! owns the two phases the paper places *after* the machine-independent
//! optimizer:
//!
//! * **Expansion** — [`expand_wm`] rewrites the generic memory references
//!   the front end produces into the WM's decoupled access/execute form:
//!   "a load instruction only computes an address; the destination of the
//!   load is implicitly the input FIFO of one of the execution units."
//!   Stores become an enqueue onto the unit's output FIFO paired with an
//!   address computation.
//! * **Scalar instruction selection** — [`strength_reduce`] and
//!   [`select_auto_increment`] reproduce the Figure 6 / Table I treatment
//!   of the 1990 scalar machines: induction-variable expressions collapse
//!   into incremented pointers, and base-register increments fold into
//!   auto-increment addressing modes.
//! * **Register allocation** — [`allocate_registers`] colors the virtual
//!   registers of both targets onto the two 32-register files, lowers the
//!   call convention (arguments in `r2..`/`f2..`, return value in
//!   `r2`/`f2`), spills what does not fit, and emits the stack-frame
//!   prologue/epilogue.

mod alloc;
mod expand;
mod scalar;

pub use alloc::{allocate_registers, AllocError, TargetKind};
pub use expand::expand_wm;
pub use scalar::{select_auto_increment, strength_reduce};
