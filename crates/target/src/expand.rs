//! Expansion of generic memory references into WM access/execute form.
//!
//! The expander is deliberately naive — the paper's Strategy 1 is "generate
//! naive but correct code and rely on the optimizer". Every generic load
//! becomes an address computation plus a dequeue of FIFO register 0; every
//! generic store becomes an enqueue onto FIFO register 0 plus an address
//! computation. The streaming and dual-combining phases of `wm-opt`
//! pattern-match these *adjacent* pairs, so the expander always emits the
//! access and the FIFO transfer next to each other and always uses input
//! FIFO index 0 (streaming retargets dequeues to register 1 itself when it
//! needs both queues).

use wm_ir::{
    AutoMode, BinOp, DataFifo, Function, Inst, InstKind, MemRef, Operand, RExpr, Reg, RegClass,
};

/// Expand every generic memory reference (`GLoad`/`GStore`) in `func` into
/// WM access/execute pairs.
///
/// The pass is idempotent: it only rewrites the generic forms, so running
/// it on an already-expanded function changes nothing.
pub fn expand_wm(func: &mut Function) {
    for bi in 0..func.blocks.len() {
        let generic = func.blocks[bi]
            .insts
            .iter()
            .any(|i| matches!(i.kind, InstKind::GLoad { .. } | InstKind::GStore { .. }));
        if !generic {
            continue;
        }
        let insts = std::mem::take(&mut func.blocks[bi].insts);
        let mut out = Vec::with_capacity(insts.len() + 8);
        for inst in insts {
            match inst.kind {
                InstKind::GLoad { dst, mem } => expand_load(func, &mut out, dst, &mem),
                InstKind::GStore { src, mem } => expand_store(func, &mut out, src, &mem),
                kind => out.push(Inst { id: inst.id, kind }),
            }
        }
        func.blocks[bi].insts = out;
    }
}

fn emit(func: &mut Function, out: &mut Vec<Inst>, kind: InstKind) {
    let id = func.new_inst_id();
    out.push(Inst { id, kind });
}

/// `dst := mem` becomes `WLoad fifo := addr` followed immediately by the
/// dequeue `dst := r0/f0`.
fn expand_load(func: &mut Function, out: &mut Vec<Inst>, dst: Reg, mem: &MemRef) {
    let addr = address_of(func, out, mem);
    let fifo = DataFifo::new(dst.class, 0);
    emit(
        func,
        out,
        InstKind::WLoad {
            fifo,
            addr,
            width: mem.width,
        },
    );
    emit(
        func,
        out,
        InstKind::Assign {
            dst,
            src: RExpr::Op(Operand::Reg(fifo.reg())),
        },
    );
    emit_auto_update(func, out, mem);
}

/// `mem := src` becomes the enqueue `r0/f0 := src` followed immediately by
/// `WStore unit := addr`, which pairs the address with the enqueued value.
fn expand_store(func: &mut Function, out: &mut Vec<Inst>, src: Operand, mem: &MemRef) {
    let unit = match src {
        Operand::Reg(r) => r.class,
        Operand::Imm(_) => RegClass::Int,
        Operand::FImm(_) => RegClass::Flt,
    };
    let addr = address_of(func, out, mem);
    emit(
        func,
        out,
        InstKind::Assign {
            dst: Reg::phys(unit, 0),
            src: RExpr::Op(src),
        },
    );
    emit(
        func,
        out,
        InstKind::WStore {
            unit,
            addr,
            width: mem.width,
        },
    );
    emit_auto_update(func, out, mem);
}

/// Lower a structured reference `[sym + base + (index << scale) + disp]`
/// to an IEU address expression. Symbol addresses become `lea` temporaries
/// (loop-invariant, so code motion hoists them); everything else folds
/// into the access itself, using the WM's dual-operation form
/// `(index << scale) + base` so a streamed or vectorized loop body carries
/// no separate addressing instructions.
fn address_of(func: &mut Function, out: &mut Vec<Inst>, mem: &MemRef) -> RExpr {
    let mut parts: Vec<Operand> = Vec::new();
    if let Some(sym) = mem.sym {
        // the displacement rides along in the lea, keeping it invariant
        let t = func.new_vreg(RegClass::Int);
        emit(
            func,
            out,
            InstKind::LoadAddr {
                dst: t,
                sym,
                disp: mem.disp,
            },
        );
        parts.push(Operand::Reg(t));
    }
    if let Some(base) = mem.base {
        parts.push(Operand::Reg(base));
    }
    let scaled = match mem.index {
        Some((idx, 0)) => {
            parts.push(Operand::Reg(idx));
            None
        }
        other => other,
    };
    if mem.sym.is_none() && (mem.disp != 0 || (parts.is_empty() && scaled.is_none())) {
        parts.push(Operand::Imm(mem.disp));
    }
    match (scaled, parts.as_slice()) {
        (None, &[a]) => RExpr::Op(a),
        (None, &[a, b]) => RExpr::Bin(BinOp::Add, a, b),
        (None, &[a, b, c]) => RExpr::Dual {
            inner: BinOp::Add,
            a,
            b,
            outer: BinOp::Add,
            c,
        },
        (Some((idx, scale)), rest) => {
            let shift = Operand::Imm(i64::from(scale));
            match *rest {
                [] => RExpr::Bin(BinOp::Shl, Operand::Reg(idx), shift),
                [c] => RExpr::Dual {
                    inner: BinOp::Shl,
                    a: Operand::Reg(idx),
                    b: shift,
                    outer: BinOp::Add,
                    c,
                },
                [a, b, ..] => {
                    // sym + base + scaled index: one anchor add, then dual
                    let t = func.new_vreg(RegClass::Int);
                    emit(
                        func,
                        out,
                        InstKind::Assign {
                            dst: t,
                            src: RExpr::Bin(BinOp::Add, a, b),
                        },
                    );
                    RExpr::Dual {
                        inner: BinOp::Shl,
                        a: Operand::Reg(idx),
                        b: shift,
                        outer: BinOp::Add,
                        c: Operand::Reg(t),
                    }
                }
            }
        }
        (None, _) => unreachable!("an empty reference lowers to its displacement"),
    }
}

/// Auto-modified references should not reach the WM expander (the modes
/// are selected by the *scalar* back end), but preserve the semantics if
/// one does: both modes update the base after the access.
fn emit_auto_update(func: &mut Function, out: &mut Vec<Inst>, mem: &MemRef) {
    let Some(base) = mem.base else { return };
    let op = match mem.auto {
        AutoMode::None => return,
        AutoMode::PostInc => BinOp::Add,
        AutoMode::PreDec => BinOp::Sub,
    };
    emit(
        func,
        out,
        InstKind::Assign {
            dst: base,
            src: RExpr::Bin(op, Operand::Reg(base), Operand::Imm(mem.width.bytes())),
        },
    );
}
