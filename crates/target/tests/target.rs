//! Unit tests for the back end: allocation failures surface as errors,
//! reserved registers are never handed out, and expansion is idempotent.

use wm_ir::{
    BinOp, FuncBuilder, InstKind, MemRef, Operand, RExpr, Reg, RegClass, Width, FIRST_ARG_REG,
    NUM_ARG_REGS,
};
use wm_target::{allocate_registers, expand_wm, AllocError, TargetKind};

/// A function whose 40 integer temporaries are all live at once — more
/// than the 28 allocatable registers, forcing the spill path.
fn high_pressure_function() -> wm_ir::Function {
    let mut b = FuncBuilder::new("pressure", 0, 0);
    let regs: Vec<Reg> = (0..40)
        .map(|i| {
            let r = b.vreg(RegClass::Int);
            b.assign(r, RExpr::Op(Operand::Imm(i)));
            r
        })
        .collect();
    let mut acc = b.vreg(RegClass::Int);
    b.copy(acc, Operand::Imm(0));
    for r in &regs {
        acc = b.bin(BinOp::Add, Operand::Reg(acc), Operand::Reg(*r));
    }
    b.ret_value(None);
    b.finish()
}

#[test]
fn too_many_arguments_is_an_error_not_a_panic() {
    let n = usize::from(NUM_ARG_REGS) + 1;
    let mut b = FuncBuilder::new("many_args", n, 0);
    b.ret_value(None);
    let mut f = b.finish();
    let err = allocate_registers(&mut f, TargetKind::Scalar)
        .expect_err("seven int parameters cannot fit six argument registers");
    assert!(
        matches!(
            err,
            AllocError::TooManyArgs {
                class: RegClass::Int,
                count,
                ..
            } if count == n
        ),
        "unexpected error: {err}"
    );
    // The error formats without panicking, for driver diagnostics.
    assert!(err.to_string().contains("many_args"));
}

#[test]
fn scalar_allocation_never_assigns_reserved_registers() {
    let mut f = high_pressure_function();
    allocate_registers(&mut f, TargetKind::Scalar).expect("spilling should succeed");
    assert!(f.frame_size > 0, "40 live registers must spill");
    for block in &f.blocks {
        for inst in &block.insts {
            for r in inst.kind.defs().into_iter().chain(inst.kind.uses()) {
                let n = r
                    .phys_num()
                    .expect("no virtual registers may survive allocation");
                assert!(
                    n != 0 && n != 1,
                    "FIFO register assigned: {r} in {:?}",
                    inst.kind
                );
                assert!(n != 31, "zero register assigned: {:?}", inst.kind);
                if n == 30 {
                    // The stack pointer may appear only in frame-adjust and
                    // spill instructions, never as an allocated value.
                    let sp_ok = match &inst.kind {
                        InstKind::Assign { dst, .. } => *dst == Reg::sp(),
                        InstKind::GLoad { mem, .. } | InstKind::GStore { mem, .. } => {
                            mem.base == Some(Reg::sp())
                        }
                        _ => false,
                    };
                    assert!(sp_ok, "stack pointer leaked into: {:?}", inst.kind);
                }
            }
        }
    }
}

#[test]
fn wm_allocation_never_assigns_reserved_registers() {
    let mut f = high_pressure_function();
    allocate_registers(&mut f, TargetKind::Wm).expect("spilling should succeed");
    assert!(f.frame_size > 0, "40 live registers must spill");
    for block in &f.blocks {
        for inst in &block.insts {
            for r in inst.kind.defs().into_iter().chain(inst.kind.uses()) {
                let n = r
                    .phys_num()
                    .expect("no virtual registers may survive allocation");
                assert!(n != 31, "zero register assigned: {:?}", inst.kind);
                if n == 0 || n == 1 {
                    // FIFO cells appear only as the endpoints of the spill
                    // enqueue/dequeue copies the allocator itself emits.
                    let fifo_ok = match &inst.kind {
                        InstKind::Assign { dst, src } => {
                            dst.is_fifo() || src.as_copy().is_some_and(Reg::is_fifo)
                        }
                        _ => false,
                    };
                    assert!(fifo_ok, "FIFO register leaked into: {:?}", inst.kind);
                }
                if n == 30 {
                    let sp_ok = match &inst.kind {
                        InstKind::Assign { dst, .. } => *dst == Reg::sp(),
                        InstKind::WLoad { addr, .. } | InstKind::WStore { addr, .. } => {
                            addr.regs().any(|a| a == Reg::sp())
                        }
                        _ => false,
                    };
                    assert!(sp_ok, "stack pointer leaked into: {:?}", inst.kind);
                }
            }
        }
    }
}

#[test]
fn return_value_lands_in_the_convention_register() {
    let mut b = FuncBuilder::new("answer", 0, 0);
    let v = b.vreg(RegClass::Int);
    b.copy(v, Operand::Imm(42));
    b.func_mut().ret = Some(v);
    b.ret_value(Some(v));
    let mut f = b.finish();
    allocate_registers(&mut f, TargetKind::Scalar).expect("trivial function allocates");
    assert_eq!(f.ret, Some(Reg::phys(RegClass::Int, FIRST_ARG_REG)));
}

#[test]
fn expand_wm_is_idempotent_on_expanded_functions() {
    let mut b = FuncBuilder::new("mem", 0, 0);
    let base = b.vreg(RegClass::Int);
    b.copy(base, Operand::Imm(0x1000));
    let v = b.vreg(RegClass::Flt);
    let mut indexed = MemRef::base(base, 8, Width::D8);
    indexed.index = Some((base, 3));
    b.emit(InstKind::GLoad {
        dst: v,
        mem: indexed,
    });
    b.emit(InstKind::GStore {
        src: Operand::Reg(v),
        mem: MemRef::base(base, 16, Width::D8),
    });
    b.ret_value(None);
    let mut f = b.finish();

    expand_wm(&mut f);
    let generic_left = f
        .insts()
        .any(|i| matches!(i.kind, InstKind::GLoad { .. } | InstKind::GStore { .. }));
    assert!(!generic_left, "expansion must remove every generic access");
    let wm_forms = f
        .insts()
        .filter(|i| matches!(i.kind, InstKind::WLoad { .. } | InstKind::WStore { .. }))
        .count();
    assert_eq!(wm_forms, 2, "one WM access per generic reference");

    let once = f.clone();
    expand_wm(&mut f);
    assert_eq!(f, once, "re-expanding an expanded function must be a no-op");
}
