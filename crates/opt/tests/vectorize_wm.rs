//! Vectorizer tests: which loops become VEU code and which are left for
//! streaming, exactly the paper's division ("recurrences … are difficult
//! and usually impossible to vectorize").

use wm_ir::InstKind;
use wm_opt::{optimize_generic, optimize_wm, OptOptions};

fn vector_stats(src: &str, name: &str) -> (wm_ir::Function, usize) {
    let opts = OptOptions::all().with_vectorization();
    let m = wm_frontend::compile(src).expect("compiles");
    let mut f = m.function_named(name).unwrap().clone();
    optimize_generic(&mut f, &opts);
    wm_target::expand_wm(&mut f);
    let stats = optimize_wm(&mut f, &opts);
    (f, stats.vector.loops_vectorized)
}

#[test]
fn two_array_map_vectorizes() {
    let (f, n) = vector_stats(
        r"
        double a[500]; double b[500]; double c[500];
        void f(int k) {
            int i;
            for (i = 0; i < k; i++) c[i] = a[i] * b[i];
        }",
        "f",
    );
    assert_eq!(n, 1);
    assert!(f.insts().any(|i| matches!(i.kind, InstKind::VecBin { .. })));
    assert_eq!(
        f.insts()
            .filter(|i| matches!(i.kind, InstKind::VStreamIn { .. }))
            .count(),
        2
    );
    assert_eq!(
        f.insts()
            .filter(|i| matches!(i.kind, InstKind::VStreamOut { .. }))
            .count(),
        1
    );
    assert!(f
        .insts()
        .any(|i| matches!(i.kind, InstKind::BranchVec { .. })));
    // the original loop survives as the tail (the streaming pass may then
    // claim it, so accept either form)
    assert!(f
        .insts()
        .any(|i| matches!(i.kind, InstKind::WStore { .. } | InstKind::StreamOut { .. })));
}

#[test]
fn const_operand_map_vectorizes_with_broadcast() {
    let (f, n) = vector_stats(
        r"
        double a[500]; double c[500];
        void f(int k) {
            int i;
            for (i = 0; i < k; i++) c[i] = a[i] * 2.5;
        }",
        "f",
    );
    assert_eq!(n, 1);
    assert!(f
        .insts()
        .any(|i| matches!(i.kind, InstKind::VecBroadcast { .. })));
}

#[test]
fn recurrences_do_not_vectorize() {
    let (_f, n) = vector_stats(
        r"
        double x[500]; double y[500]; double z[500];
        void f(int k) {
            int i;
            for (i = 2; i < k; i++) x[i] = z[i] * (y[i] - x[i-1]);
        }",
        "f",
    );
    assert_eq!(n, 0, "the paper: recurrences are impossible to vectorize");
}

#[test]
fn reductions_do_not_vectorize() {
    let (_f, n) = vector_stats(
        r"
        double a[500]; double s[1];
        void f(int k) {
            int i; double acc;
            acc = 0.0;
            for (i = 0; i < k; i++) acc = acc + a[i];
            s[0] = acc;
        }",
        "f",
    );
    assert_eq!(n, 0, "a reduction is not an elementwise map");
}

#[test]
fn integer_maps_do_not_vectorize() {
    let (_f, n) = vector_stats(
        r"
        int a[500]; int c[500];
        void f(int k) {
            int i;
            for (i = 0; i < k; i++) c[i] = a[i] + 1;
        }",
        "f",
    );
    assert_eq!(n, 0, "the VEU is modelled for doubles only");
}

#[test]
fn read_modify_write_maps_do_not_vectorize() {
    let (_f, n) = vector_stats(
        r"
        double c[500];
        void f(int k) {
            int i;
            for (i = 0; i < k; i++) c[i] = c[i] * 0.5;
        }",
        "f",
    );
    assert_eq!(n, 0, "in/out on one region needs ordering the VEU lacks");
}

#[test]
fn vectorization_is_off_by_default() {
    let src = r"
        double a[500]; double b[500]; double c[500];
        void f(int k) {
            int i;
            for (i = 0; i < k; i++) c[i] = a[i] * b[i];
        }";
    let m = wm_frontend::compile(src).unwrap();
    let mut f = m.function_named("f").unwrap().clone();
    let opts = OptOptions::all();
    optimize_generic(&mut f, &opts);
    wm_target::expand_wm(&mut f);
    let stats = optimize_wm(&mut f, &opts);
    assert_eq!(stats.vector.loops_vectorized, 0);
    assert!(stats.streaming.streams_in >= 2, "streaming claims the loop");
}
