//! Property tests on the optimizer's value-level building blocks: constant
//! folding must agree with direct evaluation, and the cleanup pipeline must
//! preserve the meaning of straight-line integer programs.

use proptest::prelude::*;
use wm_ir::{BinOp, CmpOp};

fn arb_intop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
    ]
}

proptest! {
    /// `BinOp::fold_int` agrees with the reference semantics used by both
    /// simulators (wrapping arithmetic, masked shifts, checked division).
    #[test]
    fn fold_int_matches_reference(op in arb_intop(), a in any::<i64>(), b in any::<i64>()) {
        let folded = op.fold_int(a, b);
        let reference = match op {
            BinOp::Add => Some(a.wrapping_add(b)),
            BinOp::Sub => Some(a.wrapping_sub(b)),
            BinOp::Mul => Some(a.wrapping_mul(b)),
            BinOp::Div => (b != 0).then(|| a.wrapping_div(b)),
            BinOp::Rem => (b != 0).then(|| a.wrapping_rem(b)),
            BinOp::Shl => Some(a.wrapping_shl((b & 63) as u32)),
            BinOp::Shr => Some(a.wrapping_shr((b & 63) as u32)),
            BinOp::And => Some(a & b),
            BinOp::Or => Some(a | b),
            BinOp::Xor => Some(a ^ b),
            _ => None,
        };
        prop_assert_eq!(folded, reference);
    }

    /// Commutativity claims are true where claimed.
    #[test]
    fn commutativity_is_honest(op in arb_intop(), a in any::<i64>(), b in any::<i64>()) {
        if op.is_commutative() {
            prop_assert_eq!(op.fold_int(a, b), op.fold_int(b, a));
        }
    }

    /// swap/negate on comparisons are involutions with correct semantics.
    #[test]
    fn cmp_algebra(a in any::<i64>(), b in any::<i64>()) {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            prop_assert_eq!(op.eval_int(a, b), op.swap().eval_int(b, a));
            prop_assert_eq!(op.eval_int(a, b), !op.negate().eval_int(a, b));
        }
    }

    /// The full cleanup pipeline preserves the value of straight-line
    /// integer expression programs (compile twice, optimized and not, and
    /// compare on the scalar interpreter — cheap and deterministic).
    #[test]
    fn cleanup_preserves_straightline_programs(
        seed in 1i64..1000,
        terms in proptest::collection::vec((1i64..100, 0usize..5), 1..12)
    ) {
        let ops = ["+", "-", "*", "%", "|"];
        let mut body = format!("int a; int b; a = {seed}; b = a * 2;\n");
        for (i, (v, o)) in terms.iter().enumerate() {
            let dst = if i % 2 == 0 { "a" } else { "b" };
            let src = if i % 2 == 0 { "b" } else { "a" };
            // avoid % 0: literals are ≥ 1
            body.push_str(&format!("{dst} = ({dst} {} {v}) + {src};\n", ops[o % ops.len()]));
        }
        let src = format!("int main() {{ {body} return (a + b) % 1000000; }}");

        let run = |opts: &wm_opt::OptOptions| -> i64 {
            let mut module = wm_frontend::compile(&src).expect("compiles");
            for f in module.functions.iter_mut() {
                wm_opt::optimize_generic(f, opts);
            }
            // interpret the generic form directly: no WM expansion needed
            // for a pure register program, but the scalar interpreter needs
            // physical registers — run the real pipeline instead.
            let mut module2 = module.clone();
            for f in module2.functions.iter_mut() {
                wm_target::allocate_registers(f, wm_target::TargetKind::Scalar).unwrap();
            }
            wm_machines::ScalarMachine::run(
                &module2,
                "main",
                &[],
                &wm_machines::MachineModel::vax_8600(),
            )
            .expect("runs")
            .ret_int
        };
        let baseline = run(&wm_opt::OptOptions::none());
        let optimized = run(&wm_opt::OptOptions::all());
        prop_assert_eq!(baseline, optimized, "{}", src);
    }
}
