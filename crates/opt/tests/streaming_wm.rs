//! Direct tests of the streaming pass on WM-expanded code: FIFO resource
//! accounting, recurrence blocking, trip-count handling and exit stops.

use wm_ir::{Function, InstKind};
use wm_opt::{
    optimize_generic, optimize_wm, optimize_wm_with, GlobalExtents, OptOptions, StreamingReport,
};

fn wm_function(src: &str, name: &str, opts: &OptOptions) -> (Function, StreamingReport) {
    let m = wm_frontend::compile(src).expect("compiles");
    let mut f = m.function_named(name).unwrap().clone();
    optimize_generic(&mut f, opts);
    wm_target::expand_wm(&mut f);
    let stats = optimize_wm(&mut f, opts);
    (f, stats.streaming)
}

/// Like [`wm_function`], but with the module's global extents supplied so
/// the over-fetch analysis runs.
fn wm_function_checked(src: &str, name: &str, opts: &OptOptions) -> (Function, StreamingReport) {
    let m = wm_frontend::compile(src).expect("compiles");
    let extents = GlobalExtents::of_module(&m);
    let mut f = m.function_named(name).unwrap().clone();
    optimize_generic(&mut f, opts);
    wm_target::expand_wm(&mut f);
    let stats = optimize_wm_with(&mut f, opts, &extents);
    (f, stats.streaming)
}

fn count_kind(f: &Function, pred: impl Fn(&InstKind) -> bool) -> usize {
    f.insts().filter(|i| pred(&i.kind)).count()
}

#[test]
fn two_input_fifos_per_class_limit() {
    // three streamable double reads: only two input FIFOs exist
    let (_f, s) = wm_function(
        r"
        double a[500]; double b[500]; double c[500]; double d[500];
        void f(int n) {
            int i;
            for (i = 0; i < n; i++)
                d[i] = a[i] + b[i] + c[i];
        }",
        "f",
        &OptOptions::all(),
    );
    assert!(s.streams_in <= 2, "at most two in-streams per class: {s:?}");
    assert_eq!(s.streams_out, 1, "d streams out: {s:?}");
}

#[test]
fn scalar_load_reserves_input_fifo_zero() {
    // a conditional (unstreamable) load forces streams onto FIFO 1 only
    let (f, s) = wm_function(
        r"
        double a[500]; double b[500]; double c[500];
        void f(int n) {
            int i;
            for (i = 0; i < n; i++) {
                if (i & 1)
                    c[i] = c[i] + b[i];
                c[i] = c[i] * 2.0 + a[i];
            }
        }",
        "f",
        &OptOptions::all(),
    );
    // b's load is conditional → scalar on f0; c has a same-offset RAW +
    // conditional writes; only `a` can stream, and it must take FIFO 1
    assert!(s.streams_in <= 1, "{s:?}");
    if s.streams_in == 1 {
        let uses_f1 = f.insts().any(|i| {
            matches!(
                &i.kind,
                InstKind::StreamIn { fifo, .. } if fifo.index == 1
            )
        });
        assert!(uses_f1, "the stream must avoid the scalar FIFO 0");
    }
}

#[test]
fn remaining_recurrence_blocks_streaming() {
    // without the recurrence pass, x still has a loop-carried pair: the x
    // partition must not stream (step 2a), but y and z still may
    let opts = OptOptions::all().without_recurrence();
    let (f, s) = wm_function(
        r"
        double x[500]; double y[500]; double z[500];
        void f(int n) {
            int i;
            for (i = 2; i < n; i++)
                x[i] = z[i] * (y[i] - x[i-1]);
        }",
        "f",
        &opts,
    );
    // x's remaining scalar load occupies input FIFO 0, so only ONE of
    // y/z can stream (on FIFO 1) — exactly the paper's step 2e resource
    // rule ("Allocate appropriate FIFO register. If one is not available,
    // do not stream.")
    assert_eq!(s.streams_in, 1, "one of y/z on FIFO 1: {s:?}");
    assert_eq!(s.streams_out, 0, "x must stay scalar: {s:?}");
    // x's load and store remain in WM scalar form
    assert!(count_kind(&f, |k| matches!(k, InstKind::WLoad { .. })) >= 1);
    assert!(count_kind(&f, |k| matches!(k, InstKind::WStore { .. })) >= 1);
}

#[test]
fn small_static_trip_counts_are_not_streamed() {
    let (_f, s) = wm_function(
        r"
        double a[8]; double b[8];
        void f() {
            int i;
            for (i = 0; i < 3; i++) b[i] = a[i];
        }",
        "f",
        &OptOptions::all(),
    );
    assert_eq!(s.streams_in + s.streams_out, 0, "3 iterations: {s:?}");
}

#[test]
fn larger_static_trip_counts_use_immediate_counts() {
    let (f, s) = wm_function(
        r"
        double a[64]; double b[64];
        void f() {
            int i;
            for (i = 0; i < 64; i++) b[i] = a[i];
        }",
        "f",
        &OptOptions::all(),
    );
    assert_eq!(s.streams_in, 1);
    assert_eq!(s.streams_out, 1);
    let imm64 = f.insts().any(|i| {
        matches!(
            &i.kind,
            InstKind::StreamIn {
                count: Some(wm_ir::Operand::Imm(64)),
                ..
            }
        )
    });
    assert!(imm64, "static count folds to an immediate");
    assert_eq!(s.tests_replaced, 1);
    assert_eq!(s.ivs_deleted, 1, "the IV dies with the test: {s:?}");
}

#[test]
fn unknown_counts_use_unbounded_streams_with_stops() {
    let opts = OptOptions::all().assume_noalias();
    let (f, s) = wm_function(
        r"
        int copy(char *d, char *s) {
            int i;
            i = 0;
            while (s[i]) { d[i] = s[i]; i = i + 1; }
            return i;
        }",
        "copy",
        &opts,
    );
    assert!(s.infinite >= 2, "src reads + dst writes: {s:?}");
    assert!(
        count_kind(&f, |k| matches!(k, InstKind::StreamStop { .. })) >= 2,
        "stops on the loop exit"
    );
    assert_eq!(s.tests_replaced, 0, "data-dependent exit keeps its branch");
}

#[test]
fn loops_with_calls_are_not_streamed() {
    let (_f, s) = wm_function(
        r"
        int g(int x) { return x + 1; }
        int sum(int n) {
            int a[100];
            int i; int t;
            t = 0;
            for (i = 0; i < n; i++) t = t + g(i);
            return t;
        }",
        "sum",
        &OptOptions::all(),
    );
    assert_eq!(s.streams_in + s.streams_out, 0, "{s:?}");
}

#[test]
fn downward_loops_get_negative_strides() {
    let (f, s) = wm_function(
        r"
        double a[500]; double b[500];
        void f(int n) {
            int i;
            for (i = n - 1; i >= 0; i--) b[i] = a[i];
        }",
        "f",
        &OptOptions::all(),
    );
    assert_eq!(s.streams_in, 1, "{s:?}");
    let neg = f.insts().any(|i| {
        matches!(
            &i.kind,
            InstKind::StreamIn {
                stride: wm_ir::Operand::Imm(-8),
                ..
            }
        )
    });
    assert!(neg, "stride −8 for the downward walk");
}

const OOB_COUNTED: &str = r"
    int u[100]; int out[1];
    void f() {
        int i; int acc;
        acc = 0;
        for (i = 0; i < 100; i++) acc = acc + u[i + 2];
        out[0] = acc;
    }";

#[test]
fn provably_oob_counted_stream_degrades_to_scalar() {
    // u[i+2] runs to u[101] over int u[100]: the whole range is static,
    // so the over-fetch analysis keeps the reference scalar and the fault
    // (if reached) gets precise per-access attribution
    let (f, s) = wm_function_checked(OOB_COUNTED, "f", &OptOptions::all());
    assert_eq!(s.streams_in, 0, "{s:?}");
    assert!(s.overfetch_degraded >= 1, "{s:?}");
    assert!(
        count_kind(&f, |k| matches!(k, InstKind::WLoad { .. })) >= 1,
        "the load stays scalar"
    );
}

#[test]
fn speculative_streams_keep_oob_counted_streams() {
    let opts = OptOptions::all().with_speculative_streams();
    let (_f, s) = wm_function_checked(OOB_COUNTED, "f", &opts);
    assert_eq!(s.streams_in, 1, "{s:?}");
    assert!(s.overfetch_speculated >= 1, "{s:?}");
    assert_eq!(s.overfetch_degraded, 0, "{s:?}");
}

#[test]
fn unbounded_stream_over_sized_global_degrades_by_default() {
    // the SCU would prefetch past the sentinel — over an exactly-sized
    // global that can cross the extent, so the in-stream degrades; the
    // out-stream writes only what the program enqueues and may stay
    const SRC: &str = r"
        char src[32]; char dst[32];
        void f() {
            int i;
            i = 0;
            while (src[i]) { dst[i] = src[i]; i = i + 1; }
            dst[i] = 0;
        }";
    let (_f, s) = wm_function_checked(SRC, "f", &OptOptions::all().assume_noalias());
    assert!(s.overfetch_degraded >= 1, "{s:?}");
    assert_eq!(s.streams_in, 0, "the sentinel scan stays scalar: {s:?}");

    let spec = OptOptions::all()
        .assume_noalias()
        .with_speculative_streams();
    let (_f, s) = wm_function_checked(SRC, "f", &spec);
    assert!(s.overfetch_speculated >= 1, "{s:?}");
    assert!(s.streams_in >= 1, "speculation restores the stream: {s:?}");
}

#[test]
fn in_bounds_counted_streams_are_untouched_by_the_analysis() {
    let (_f, s) = wm_function_checked(
        r"
        double a[64]; double b[64];
        void f() {
            int i;
            for (i = 0; i < 64; i++) b[i] = a[i];
        }",
        "f",
        &OptOptions::all(),
    );
    assert_eq!(s.streams_in, 1, "{s:?}");
    assert_eq!(s.streams_out, 1, "{s:?}");
    assert_eq!(s.overfetch_degraded + s.overfetch_speculated, 0, "{s:?}");
}

#[test]
fn csr_gather_fuses_index_and_data_loads() {
    // s += val[j] * x[col[j]]: col[j] is an affine index load feeding the
    // x gather; the loop has no stores, so even conservative aliasing
    // admits the fusion. All three loads leave the body.
    let (f, s) = wm_function_checked(
        r"
        int val[256]; int col[256]; int x[512]; int y[4];
        void f(int n) {
            int j; int acc;
            acc = 0;
            for (j = 0; j < n; j++) acc = acc + val[j] * x[col[j]];
            y[0] = acc;
        }",
        "f",
        &OptOptions::all(),
    );
    assert_eq!(s.gathers, 1, "{s:?}");
    assert_eq!(s.streams_in, 1, "val[j] streams affinely: {s:?}");
    assert_eq!(
        count_kind(&f, |k| matches!(k, InstKind::WLoad { .. })),
        0,
        "no scalar loads remain"
    );
    let has_gather = f.insts().any(|i| {
        matches!(
            &i.kind,
            InstKind::StreamGather { shift: 2, .. } // int elements: idx << 2
        )
    });
    assert!(has_gather, "gather descriptor with shift 2");
    assert_eq!(s.tests_replaced, 1, "jNI termination: {s:?}");
}

#[test]
fn conservative_gather_requires_store_free_loop() {
    // y[j] = x[col[j]]: the store makes the gather's run-ahead reads
    // unprovable under conservative aliasing; -noalias admits it.
    const SRC: &str = r"
        int col[128]; int x[512]; int y[128];
        void f(int n) {
            int j;
            for (j = 0; j < n; j++) y[j] = x[col[j]];
        }";
    let (_f, s) = wm_function_checked(SRC, "f", &OptOptions::all());
    assert_eq!(s.gathers, 0, "a store blocks conservative gather: {s:?}");
    let (_f, s) = wm_function_checked(SRC, "f", &OptOptions::all().assume_noalias());
    assert_eq!(s.gathers, 1, "{s:?}");
    assert_eq!(s.streams_out, 1, "y[j] streams out alongside: {s:?}");
}

#[test]
fn scatter_fuses_store_side_under_noalias() {
    const SRC: &str = r"
        int idx[128]; int data[128]; int out[256];
        void f(int n) {
            int i;
            for (i = 0; i < n; i++) out[idx[i]] = data[i];
        }";
    let (f, s) = wm_function_checked(SRC, "f", &OptOptions::all().assume_noalias());
    assert_eq!(s.scatters, 1, "{s:?}");
    assert_eq!(s.streams_in, 1, "data[i] streams: {s:?}");
    let span_ok = f.insts().any(|i| {
        matches!(
            &i.kind,
            InstKind::StreamScatter { span: 1024, .. } // int out[256]
        )
    });
    assert!(span_ok, "ordering span covers the scattered global");
    assert_eq!(
        count_kind(&f, |k| matches!(k, InstKind::WStore { .. })),
        0,
        "the indexed store is gone"
    );
    // conservative aliasing cannot order the scatter's writes
    let (_f, s) = wm_function_checked(SRC, "f", &OptOptions::all());
    assert_eq!(s.scatters, 0, "{s:?}");
}

#[test]
fn streamed_loop_body_sheds_address_arithmetic() {
    let (f, _s) = wm_function(
        r"
        double a[500]; double s[1];
        void f(int n) {
            int i; double acc;
            acc = 0.0;
            for (i = 0; i < n; i++) acc = acc + a[i];
            s[0] = acc;
        }",
        "f",
        &OptOptions::all(),
    );
    // find the loop (block targeted by a BranchStream) and check it has no
    // integer ALU work left
    let loop_target = f
        .insts()
        .find_map(|i| match &i.kind {
            InstKind::BranchStream { target, .. } => Some(*target),
            _ => None,
        })
        .expect("a streamed loop");
    let bi = f.block_index(loop_target);
    for inst in &f.blocks[bi].insts {
        assert!(
            !matches!(&inst.kind, InstKind::WLoad { .. } | InstKind::WStore { .. }),
            "no in-loop memory ops: {}",
            inst.kind
        );
    }
}
