//! Control-flow analyses: dominators, natural loops, preheaders.

use std::collections::BTreeSet;

use wm_ir::{Function, InstKind, Label};

/// Immediate-dominator tree computed with the Cooper–Harvey–Kennedy
/// iterative algorithm. Block indices are layout indices into
/// `Function::blocks`.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of `b` (`idom[0] == 0`).
    /// Unreachable blocks have `usize::MAX`.
    idom: Vec<usize>,
}

impl Dominators {
    /// Compute dominators for `func`.
    pub fn compute(func: &Function) -> Dominators {
        let n = func.blocks.len();
        let preds = func.predecessors();
        // reverse postorder
        let rpo = reverse_postorder(func);
        let mut order_of = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            order_of[b] = i;
        }
        let mut idom = vec![usize::MAX; n];
        if n == 0 {
            return Dominators { idom };
        }
        idom[0] = 0;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom = usize::MAX;
                for &p in &preds[b] {
                    if idom[p] == usize::MAX {
                        continue; // not yet processed / unreachable
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, &order_of, p, new_idom)
                    };
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }

    /// Does block `a` dominate block `b`?
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if self.idom.get(b).copied() == Some(usize::MAX) {
            return false; // unreachable
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == 0 {
                return a == 0;
            }
            cur = self.idom[cur];
        }
    }

    /// Immediate dominator of `b` (entry's idom is itself).
    pub fn idom(&self, b: usize) -> usize {
        self.idom[b]
    }

    /// Is block `b` reachable from the entry?
    pub fn is_reachable(&self, b: usize) -> bool {
        self.idom.get(b).copied() != Some(usize::MAX)
    }
}

fn intersect(idom: &[usize], order: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while order[a] > order[b] {
            a = idom[a];
        }
        while order[b] > order[a] {
            b = idom[b];
        }
    }
    a
}

/// Blocks in reverse postorder of a DFS from the entry.
pub fn reverse_postorder(func: &Function) -> Vec<usize> {
    let n = func.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // iterative DFS with explicit stack of (block, next-successor-index)
    let mut stack: Vec<(usize, usize)> = Vec::new();
    if n > 0 {
        visited[0] = true;
        stack.push((0, 0));
    }
    while let Some(frame) = stack.last_mut() {
        let b = frame.0;
        let succs = func.successors(b);
        if frame.1 < succs.len() {
            let s = succs[frame.1];
            frame.1 += 1;
            if !visited[s] {
                visited[s] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// A natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header block index.
    pub header: usize,
    /// All block indices in the loop (header included).
    pub blocks: BTreeSet<usize>,
    /// Blocks with a back edge to the header.
    pub latches: Vec<usize>,
    /// Edges `(from_in_loop, to_outside)` leaving the loop.
    pub exits: Vec<(usize, usize)>,
}

impl Loop {
    /// Does the loop contain block `b`?
    pub fn contains(&self, b: usize) -> bool {
        self.blocks.contains(&b)
    }

    /// Is this loop innermost with respect to `loops` (contains no other
    /// loop's header except its own)?
    pub fn is_innermost(&self, loops: &[Loop]) -> bool {
        loops
            .iter()
            .all(|l| l.header == self.header || !self.blocks.contains(&l.header))
    }
}

/// Find all natural loops of `func` (one per header; back edges to the same
/// header are merged).
pub fn natural_loops(func: &Function, dom: &Dominators) -> Vec<Loop> {
    let n = func.blocks.len();
    let mut loops: Vec<Loop> = Vec::new();
    for b in 0..n {
        if !dom.is_reachable(b) {
            continue;
        }
        for s in func.successors(b) {
            if dom.dominates(s, b) {
                // back edge b -> s
                if let Some(l) = loops.iter_mut().find(|l| l.header == s) {
                    extend_loop(func, l, b);
                    if !l.latches.contains(&b) {
                        l.latches.push(b);
                    }
                } else {
                    let mut l = Loop {
                        header: s,
                        blocks: BTreeSet::from([s]),
                        latches: vec![b],
                        exits: Vec::new(),
                    };
                    extend_loop(func, &mut l, b);
                    loops.push(l);
                }
            }
        }
    }
    for l in &mut loops {
        l.exits = loop_exits(func, l);
    }
    loops
}

fn extend_loop(func: &Function, l: &mut Loop, latch: usize) {
    // classic natural-loop body collection: walk predecessors from the latch
    let preds = func.predecessors();
    let mut stack = vec![latch];
    while let Some(b) = stack.pop() {
        if l.blocks.insert(b) {
            for &p in &preds[b] {
                stack.push(p);
            }
        }
    }
}

fn loop_exits(func: &Function, l: &Loop) -> Vec<(usize, usize)> {
    let mut exits = Vec::new();
    for &b in &l.blocks {
        for s in func.successors(b) {
            if !l.contains(s) {
                exits.push((b, s));
            }
        }
    }
    exits
}

/// Ensure the loop has a *preheader*: a block outside the loop whose only
/// successor is the header and through which every entry edge flows.
/// Creates one (retargeting all outside edges) if necessary, and returns its
/// label. The `Loop` is left stale — recompute loops if you need them again.
pub fn ensure_preheader(func: &mut Function, l: &Loop) -> Label {
    let preds = func.predecessors();
    let header_label = func.blocks[l.header].label;
    let outside: Vec<usize> = preds[l.header]
        .iter()
        .copied()
        .filter(|p| !l.contains(*p))
        .collect();
    // An existing unique outside predecessor that ends in an unconditional
    // jump to the header already is a preheader.
    if outside.len() == 1 {
        let p = outside[0];
        if let Some(last) = func.blocks[p].insts.last() {
            if last.kind
                == (InstKind::Jump {
                    target: header_label,
                })
            {
                return func.blocks[p].label;
            }
        }
    }
    let pre = func.add_block();
    func.push(
        pre,
        InstKind::Jump {
            target: header_label,
        },
    );
    // Retarget every outside edge into the header.
    for &p in &outside {
        let label = func.blocks[p].label;
        let block = func.block_mut(label);
        if let Some(last) = block.insts.last_mut() {
            for t in last.kind.targets_mut() {
                if *t == header_label {
                    *t = pre;
                }
            }
        }
        // A fallthrough (unterminated) predecessor cannot occur for a loop
        // header produced by the front end, which always terminates blocks.
    }
    pre
}

/// Split the control-flow edge `from -> to`, inserting a fresh block that
/// jumps to `to`, and return the new block's label.
pub fn split_edge(func: &mut Function, from: usize, to: usize) -> Label {
    let to_label = func.blocks[to].label;
    let from_label = func.blocks[from].label;
    let stub = func.add_block();
    func.push(stub, InstKind::Jump { target: to_label });
    let block = func.block_mut(from_label);
    let last = block
        .insts
        .last_mut()
        .expect("edge source must have a terminator");
    let mut hit = false;
    for t in last.kind.targets_mut() {
        if *t == to_label {
            *t = stub;
            hit = true;
        }
    }
    assert!(hit, "no edge from {from_label} to {to_label}");
    stub
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_ir::{CmpOp, FuncBuilder, Operand, RegClass};

    /// Build the canonical guarded bottom-tested loop:
    /// entry(guard) -> body -> latch -> {body, exit}
    fn loop_func() -> Function {
        let mut b = FuncBuilder::new("f", 1, 0);
        let n = b.func().params[0];
        let body = b.new_block();
        let latch = b.new_block();
        let exit = b.new_block();
        b.branch_if(
            RegClass::Int,
            CmpOp::Lt,
            Operand::Imm(0),
            n.into(),
            body,
            exit,
        );
        b.switch_to(body);
        b.jump(latch);
        b.switch_to(latch);
        b.branch_if(
            RegClass::Int,
            CmpOp::Lt,
            Operand::Imm(0),
            n.into(),
            body,
            exit,
        );
        b.switch_to(exit);
        b.emit(InstKind::Ret);
        b.finish()
    }

    #[test]
    fn dominators_of_diamond() {
        let f = loop_func();
        let dom = Dominators::compute(&f);
        // entry dominates everything
        for b in 0..f.blocks.len() {
            assert!(dom.dominates(0, b));
        }
        // body (1) dominates latch (2) but not exit (3)
        assert!(dom.dominates(1, 2));
        assert!(!dom.dominates(1, 3));
        assert!(!dom.dominates(2, 1));
    }

    #[test]
    fn finds_the_natural_loop() {
        let f = loop_func();
        let dom = Dominators::compute(&f);
        let loops = natural_loops(&f, &dom);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, 1);
        assert_eq!(l.blocks, BTreeSet::from([1, 2]));
        assert_eq!(l.latches, vec![2]);
        assert_eq!(l.exits, vec![(2, 3)]);
        assert!(l.is_innermost(&loops));
    }

    #[test]
    fn preheader_creation_redirects_entry_edges() {
        let mut f = loop_func();
        let dom = Dominators::compute(&f);
        let loops = natural_loops(&f, &dom);
        let pre = ensure_preheader(&mut f, &loops[0]);
        // Recompute: the loop should now be entered only via the preheader.
        let dom = Dominators::compute(&f);
        let loops = natural_loops(&f, &dom);
        let l = &loops[0];
        let preds = f.predecessors();
        let outside: Vec<usize> = preds[l.header]
            .iter()
            .copied()
            .filter(|p| !l.contains(*p))
            .collect();
        assert_eq!(outside.len(), 1);
        assert_eq!(f.blocks[outside[0]].label, pre);
        // Idempotent.
        let pre2 = ensure_preheader(&mut f, l);
        assert_eq!(pre, pre2);
    }

    #[test]
    fn split_edge_inserts_stub() {
        let mut f = loop_func();
        let stub = split_edge(&mut f, 2, 3);
        let si = f.block_index(stub);
        assert_eq!(f.successors(si), vec![3]);
        assert!(f.successors(2).contains(&si));
        assert!(!f.successors(2).contains(&3));
    }

    #[test]
    fn rpo_starts_at_entry() {
        let f = loop_func();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 4);
    }
}
