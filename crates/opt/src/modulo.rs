//! Optimal software pipelining (`-O modulo`) via difference-logic SMT.
//!
//! The streaming transformation leaves inner loops whose steady-state
//! initiation interval is limited not by resources but by the *order* the
//! instructions were emitted in: an adjacent register dependence costs a
//! one-cycle issue interlock, and a FIFO pop placed too close to the load
//! that feeds it leaks memory latency into every iteration. Because the
//! WM's IFU dispatches exactly one non-control instruction per cycle, a
//! loop of `m` instructions can never beat `m` cycles per iteration — but
//! a careless ordering is easily worse.
//!
//! This pass searches for a provably minimal-interval schedule using the
//! in-tree [`wm_solver`] DPLL(T) solver. Each instruction `i` of an
//! eligible inner loop gets a *row* `r_i ∈ [0, II)` (a difference-logic
//! time variable) and a *stage* `s_i ∈ {0, 1}` (a boolean), placing it at
//! the virtual issue slot `t_i = r_i + II·s_i`. A dependence
//! `i → j` with latency `L` and iteration distance `d` becomes
//! `t_j + II·d ≥ t_i + L`, which for each of the four stage combinations
//! `(s_i, s_j) = (a, b)` is the pure difference constraint
//! `r_i − r_j ≤ II·(d + b − a) − L`, guarded by two stage literals. Rows
//! are pairwise distinct (the one-dispatch-per-cycle bound). The minimal
//! feasible `II` is found by binary search from `MII = m` up to one below
//! the measured greedy interval; `Unsat`/`Unknown` anywhere simply keeps
//! the greedy code, so the pass can never regress a loop it touches.
//!
//! The emitted shape for a two-stage schedule reuses the loop's `jNI`
//! counter protocol without speculation: the original block becomes the
//! *prologue* (iteration 0's stage-0 instructions), a fresh *kernel*
//! block carries every instruction once in row order — row order **is**
//! execution-time order for the `(stage 1, iter j)`/`(stage 0, iter j+1)`
//! mix a kernel pass executes — and a fresh *epilogue* flushes the final
//! iteration's stage-1 instructions. The `jNI` is executed exactly once
//! per iteration in either shape, so the IFU termination counter is
//! decremented the same number of times as in the sequential loop, for
//! every trip count.

use std::collections::{BTreeMap, VecDeque};

use wm_ir::{Block, DataFifo, Function, Inst, InstKind, Label, RExpr, Reg, RegClass, UnOp};
use wm_solver::{BVar, Budget, Lit, Outcome, Solver, TVar};

/// Largest loop body (in instructions) the pass considers; keeps solver
/// instances tiny and bounds the all-pairs distinct-row clauses.
const MAX_BODY: usize = 24;
/// Candidate IIs probed at most this far above `MII` (the greedy interval
/// caps the search anyway; this bounds it when the estimator misbehaves).
const MAX_II_SLACK: i64 = 32;
/// Modelled latency of a register true dependence: a consumer scheduled
/// two or more slots after its producer can never hit the one-cycle
/// adjacent-issue interlock.
const RAW_LATENCY: i64 = 2;
/// Rounds simulated by the greedy-interval estimator (the last four
/// deltas are averaged, past the warm-up transient).
const EST_ROUNDS: usize = 12;
/// Per-unit instruction-queue capacity modelled by the estimator
/// (matches the simulator's `iq_capacity`).
const IQ_CAPACITY: usize = 8;
/// Most in-loop `WLoad`s allowed per FIFO: the kernel can run one
/// iteration of loads ahead of the pops, and the in-FIFO must be able to
/// buffer them without stalling (capacities of 4+ are safe).
const MAX_LOADS_PER_FIFO: usize = 3;

/// Number of per-loop entries a [`ModuloReport`] can carry.
pub const MAX_LOOP_REPORTS: usize = 8;

/// What happened to one candidate loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopReport {
    /// Label number of the loop block.
    pub label: u32,
    /// Body size in instructions (excluding the `jNI`).
    pub insts: u32,
    /// Minimum initiation interval: the dispatch bound `m` (per-unit
    /// counts and memory ports never exceed it on the WM).
    pub mii: u32,
    /// Estimated steady-state interval of the greedy (program-order)
    /// schedule, in cycles per iteration.
    pub greedy: u32,
    /// Achieved initiation interval: the solver's minimal feasible `II`
    /// when pipelined, the greedy interval otherwise.
    pub ii: u32,
    /// Was the loop rescheduled?
    pub pipelined: bool,
}

/// What the modulo-scheduling pass did to one function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModuloReport {
    /// Eligible inner loops examined.
    pub considered: u32,
    /// Loops rescheduled to a smaller interval.
    pub pipelined: u32,
    nloops: u32,
    loops: [LoopReport; MAX_LOOP_REPORTS],
}

impl ModuloReport {
    /// Per-loop detail, in the order the loops were encountered (at most
    /// [`MAX_LOOP_REPORTS`] entries are retained).
    pub fn loops(&self) -> &[LoopReport] {
        &self.loops[..self.nloops as usize]
    }

    fn record(&mut self, entry: LoopReport) {
        if (self.nloops as usize) < MAX_LOOP_REPORTS {
            self.loops[self.nloops as usize] = entry;
            self.nloops += 1;
        }
    }
}

/// The scheduling-relevant shape of one body instruction.
struct BodyInst {
    /// Execution unit the IFU dispatches it to.
    unit: RegClass,
    /// Virtual register defined (conventional value only — FIFO pushes
    /// and zero-register discards do not arm the issue interlock).
    def: Option<Reg>,
    /// Virtual registers read.
    uses: Vec<Reg>,
    /// Input FIFOs dequeued from.
    pops: Vec<DataFifo>,
    /// Output FIFO enqueued into (an `Assign` to register 0).
    push: Option<RegClass>,
    /// Target FIFO of a `WLoad`.
    load: Option<DataFifo>,
    /// Paired unit of a `WStore`.
    store: Option<RegClass>,
}

/// An eligible single-block `jNI` inner loop.
struct LoopBody {
    insts: Vec<BodyInst>,
    els: Label,
}

/// A dependence edge: `t_to + II·dist ≥ t_from + lat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Edge {
    from: usize,
    to: usize,
    lat: i64,
    dist: i64,
}

/// Reschedule every eligible inner loop of `func` at its minimal feasible
/// initiation interval. `budget` caps solver conflicts per candidate II
/// (the pass is deterministic: no wall-clock limits are used);
/// `mem_latency` is the modelled load-to-pop latency in cycles.
pub fn modulo_schedule(func: &mut Function, budget: u64, mem_latency: i64) -> ModuloReport {
    let mut report = ModuloReport::default();
    let nblocks = func.blocks.len();
    for bi in 0..nblocks {
        let Some(body) = analyze(&func.blocks[bi]) else {
            continue;
        };
        report.considered += 1;
        let m = body.insts.len();
        let greedy = greedy_interval(&body.insts, mem_latency);
        let mut entry = LoopReport {
            label: func.blocks[bi].label.0,
            insts: m as u32,
            mii: m as u32,
            greedy: greedy as u32,
            ii: greedy as u32,
            pipelined: false,
        };
        if let Some(edges) = build_edges(&body.insts, mem_latency) {
            if let Some((ii, rows, stages)) = find_schedule(m, &edges, greedy, budget) {
                emit(func, bi, &rows, &stages, body.els);
                entry.ii = ii as u32;
                entry.pipelined = true;
                report.pipelined += 1;
            }
        }
        report.record(entry);
    }
    report
}

// ---------------------------------------------------------------------------
// Loop recognition
// ---------------------------------------------------------------------------

/// Recognize a single-block counted inner loop whose body the scheduler
/// fully understands. Anything unrecognized bails to the greedy code.
fn analyze(block: &Block) -> Option<LoopBody> {
    let term = block.insts.last()?;
    let InstKind::BranchStream { target, els, .. } = term.kind else {
        return None;
    };
    if target != block.label || els == block.label {
        return None;
    }
    let m = block.insts.len() - 1;
    if !(2..=MAX_BODY).contains(&m) {
        return None;
    }
    let mut insts = Vec::with_capacity(m);
    for inst in &block.insts[..m] {
        insts.push(classify(&inst.kind)?);
    }
    // Loads must pair one-to-one and positionally with the pops that
    // consume them (the FIFO is at its entry level each iteration in the
    // sequential schedule); a FIFO popped without in-loop loads is
    // stream-fed and imposes only ordering.
    let mut pops: BTreeMap<DataFifo, usize> = BTreeMap::new();
    let mut loads: BTreeMap<DataFifo, usize> = BTreeMap::new();
    let mut pushes: BTreeMap<RegClass, usize> = BTreeMap::new();
    let mut stores: BTreeMap<RegClass, usize> = BTreeMap::new();
    for b in &insts {
        for &f in &b.pops {
            *pops.entry(f).or_insert(0) += 1;
        }
        if let Some(f) = b.load {
            *loads.entry(f).or_insert(0) += 1;
        }
        if let Some(u) = b.push {
            *pushes.entry(u).or_insert(0) += 1;
        }
        if let Some(u) = b.store {
            *stores.entry(u).or_insert(0) += 1;
        }
    }
    for (f, &nl) in &loads {
        let np = *pops.get(f).unwrap_or(&0);
        if nl > MAX_LOADS_PER_FIFO || (np != 0 && nl != np) {
            return None;
        }
    }
    // Stores pop the unit's output FIFO; they must pair one-to-one with
    // the in-loop pushes (a stream-drained output FIFO has no stores).
    for (u, &ns) in &stores {
        let np = *pushes.get(u).unwrap_or(&0);
        if np != ns {
            return None;
        }
    }
    Some(LoopBody { insts, els })
}

fn classify(kind: &InstKind) -> Option<BodyInst> {
    match kind {
        InstKind::Assign { dst, src } => {
            // Conversions execute on the IFU after both units quiesce.
            if matches!(src, RExpr::Un(UnOp::IntToFlt | UnOp::FltToInt, _)) {
                return None;
            }
            let class = dst.class;
            let (def, push) = if dst.is_virt() {
                (Some(*dst), None)
            } else if dst.is_zero() {
                (None, None)
            } else if dst.phys_num() == Some(0) {
                (None, Some(class))
            } else {
                // Register-1 writes and architected scalar definitions.
                return None;
            };
            let mut pops = Vec::new();
            let mut uses = Vec::new();
            for op in src.operands() {
                let Some(r) = op.reg() else { continue };
                if r.class != class {
                    return None; // cross-class read
                }
                if r.is_fifo() {
                    let f = DataFifo::new(class, r.phys_num().unwrap());
                    if pops.contains(&f) {
                        return None; // double dequeue in a single RTL
                    }
                    pops.push(f);
                } else if r.is_virt() {
                    uses.push(r);
                }
                // Non-FIFO physical reads are loop-invariant here: the
                // body is barred from architected scalar definitions.
            }
            Some(BodyInst {
                unit: class,
                def,
                uses,
                pops,
                push,
                load: None,
                store: None,
            })
        }
        InstKind::WLoad { fifo, addr, .. } => Some(BodyInst {
            unit: RegClass::Int,
            def: None,
            uses: addr_uses(addr)?,
            pops: Vec::new(),
            push: None,
            load: Some(*fifo),
            store: None,
        }),
        InstKind::WStore { unit, addr, .. } => Some(BodyInst {
            unit: RegClass::Int,
            def: None,
            uses: addr_uses(addr)?,
            pops: Vec::new(),
            push: None,
            load: None,
            store: Some(*unit),
        }),
        _ => None,
    }
}

/// Virtual registers read by a `WLoad`/`WStore` address expression;
/// `None` if the address reads a FIFO or a non-integer register.
fn addr_uses(addr: &RExpr) -> Option<Vec<Reg>> {
    let mut uses = Vec::new();
    for r in addr.regs() {
        if r.class != RegClass::Int || r.is_fifo() {
            return None;
        }
        if r.is_virt() {
            uses.push(r);
        }
    }
    Some(uses)
}

// ---------------------------------------------------------------------------
// Dependence edges
// ---------------------------------------------------------------------------

/// Chain `sites` into a total order (consecutive at distance 0, wrapping
/// last → first at distance 1), preserving the sequence across iterations.
fn chain(edges: &mut Vec<Edge>, sites: &[usize], lat: i64) {
    for w in sites.windows(2) {
        edges.push(Edge {
            from: w[0],
            to: w[1],
            lat,
            dist: 0,
        });
    }
    if let (Some(&last), Some(&first)) = (sites.last(), sites.first()) {
        edges.push(Edge {
            from: last,
            to: first,
            lat,
            dist: 1,
        });
    }
}

fn build_edges(body: &[BodyInst], mem_latency: i64) -> Option<Vec<Edge>> {
    let mut edges = Vec::new();
    let mut defs: BTreeMap<Reg, Vec<usize>> = BTreeMap::new();
    let mut uses: BTreeMap<Reg, Vec<usize>> = BTreeMap::new();
    let mut pop_sites: BTreeMap<DataFifo, Vec<usize>> = BTreeMap::new();
    let mut load_sites: BTreeMap<DataFifo, Vec<usize>> = BTreeMap::new();
    let mut push_sites: BTreeMap<RegClass, Vec<usize>> = BTreeMap::new();
    let mut store_sites: BTreeMap<RegClass, Vec<usize>> = BTreeMap::new();
    let mut loads_all = Vec::new();
    let mut stores_all = Vec::new();
    for (i, b) in body.iter().enumerate() {
        if let Some(d) = b.def {
            defs.entry(d).or_default().push(i);
        }
        for &u in &b.uses {
            let sites = uses.entry(u).or_default();
            if sites.last() != Some(&i) {
                sites.push(i);
            }
        }
        for &f in &b.pops {
            pop_sites.entry(f).or_default().push(i);
        }
        if let Some(f) = b.load {
            load_sites.entry(f).or_default().push(i);
            loads_all.push(i);
        }
        if let Some(u) = b.push {
            push_sites.entry(u).or_default().push(i);
        }
        if let Some(u) = b.store {
            store_sites.entry(u).or_default().push(i);
            stores_all.push(i);
        }
    }
    // Register dependences. All defs and uses of a virtual register are
    // on one unit (class discipline), so per-unit in-order issue realizes
    // any schedule that respects these edges.
    for (v, us) in &uses {
        let Some(ds) = defs.get(v) else {
            continue; // loop-invariant
        };
        for &u in us {
            // True dependence on the reaching definition.
            let (d_idx, dist) = match ds.iter().rev().find(|&&d| d < u) {
                Some(&d) => (d, 0),
                None => (*ds.last().unwrap(), 1),
            };
            edges.push(Edge {
                from: d_idx,
                to: u,
                lat: RAW_LATENCY,
                dist,
            });
            // Anti dependence: the next definition — in particular the
            // next iteration's stage-0 redefinition inside the kernel —
            // must not overwrite the value before this use reads it.
            let (d_idx, dist) = match ds.iter().find(|&&d| d > u) {
                Some(&d) => (d, 0),
                None => (ds[0], 1),
            };
            edges.push(Edge {
                from: u,
                to: d_idx,
                lat: 1,
                dist,
            });
        }
    }
    for ds in defs.values() {
        chain(&mut edges, ds, 1); // output dependences
    }
    // FIFO traffic is positional: any schedule is correct as long as the
    // global pop sequence and the global push sequence of each queue are
    // preserved, which these total-order chains guarantee.
    for sites in pop_sites.values() {
        chain(&mut edges, sites, 1);
    }
    for sites in load_sites.values() {
        chain(&mut edges, sites, 1);
    }
    for sites in push_sites.values() {
        chain(&mut edges, sites, 1);
    }
    // One global store queue: preserve the full store order.
    chain(&mut edges, &stores_all, 1);
    // A paired pop sees its load's data `mem_latency` cycles after issue.
    for (f, ls) in &load_sites {
        let Some(ps) = pop_sites.get(f) else { continue };
        debug_assert_eq!(ls.len(), ps.len());
        for (&l, &p) in ls.iter().zip(ps) {
            if l >= p {
                // A pop ahead of its own load means the FIFO was not at
                // level zero on iteration entry; pairing is unknowable.
                return None;
            }
            edges.push(Edge {
                from: l,
                to: p,
                lat: mem_latency,
                dist: 0,
            });
        }
    }
    // A store dequeues its paired push's value: keep the push ahead so
    // the store never blocks the store queue head waiting on the unit.
    for (u, ss) in &store_sites {
        let Some(ps) = push_sites.get(u) else {
            continue;
        };
        debug_assert_eq!(ss.len(), ps.len());
        for (&p, &st) in ps.iter().zip(ss) {
            edges.push(Edge {
                from: p,
                to: st,
                lat: 1,
                dist: 0,
            });
        }
    }
    // No in-loop disambiguation: conservatively freeze the relative order
    // of every load/store pair, in both directions, across iterations.
    if !loads_all.is_empty() && !stores_all.is_empty() {
        for &l in &loads_all {
            for &s in &stores_all {
                let (a, b) = if l < s { (l, s) } else { (s, l) };
                edges.push(Edge {
                    from: a,
                    to: b,
                    lat: 1,
                    dist: 0,
                });
                edges.push(Edge {
                    from: b,
                    to: a,
                    lat: 1,
                    dist: 1,
                });
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Some(edges)
}

// ---------------------------------------------------------------------------
// Greedy-interval estimator
// ---------------------------------------------------------------------------

#[derive(Default)]
struct UnitState {
    queue: VecDeque<(usize, usize)>, // (round, body index)
    prev_def: Option<Reg>,
    prev_cycle: u64,
}

/// Estimate the steady-state cycles per iteration of the greedy
/// (program-order) schedule with a small dispatch/issue model: one
/// dispatch per cycle into bounded per-unit queues, in-order issue with
/// the adjacent-definition interlock, and paired pops gated on their
/// load's issue time plus `mem_latency`. The estimate only *targets* the
/// search — correctness never depends on it.
fn greedy_interval(body: &[BodyInst], mem_latency: i64) -> u64 {
    let m = body.len();
    let paired: Vec<DataFifo> = body.iter().filter_map(|b| b.load).collect();
    let mut load_issue: BTreeMap<DataFifo, Vec<u64>> = BTreeMap::new();
    let mut pops_done: BTreeMap<DataFifo, usize> = BTreeMap::new();
    let mut ieu = UnitState::default();
    let mut feu = UnitState::default();
    let mut round_max = [0u64; EST_ROUNDS];
    let mut next = (0usize, 0usize); // (round, body index) to dispatch
    let mut issued = 0usize;
    let mut cycle = 0u64;
    while issued < EST_ROUNDS * m && cycle < 100_000 {
        cycle += 1;
        // Units issue before the IFU dispatches, as in the machine.
        for unit in [&mut ieu, &mut feu] {
            let Some(&(round, idx)) = unit.queue.front() else {
                continue;
            };
            let b = &body[idx];
            let interlocked =
                unit.prev_cycle + 1 == cycle && unit.prev_def.is_some_and(|d| b.uses.contains(&d));
            let starved = b.pops.iter().any(|f| {
                if !paired.contains(f) {
                    return false; // stream-fed: data always ready
                }
                let k = *pops_done.get(f).unwrap_or(&0);
                load_issue
                    .get(f)
                    .and_then(|l| l.get(k))
                    .is_none_or(|&t| t + mem_latency as u64 > cycle)
            });
            if interlocked || starved {
                continue;
            }
            unit.queue.pop_front();
            for f in &b.pops {
                *pops_done.entry(*f).or_insert(0) += 1;
            }
            if let Some(f) = b.load {
                load_issue.entry(f).or_default().push(cycle);
            }
            unit.prev_def = b.def;
            unit.prev_cycle = cycle;
            round_max[round] = round_max[round].max(cycle);
            issued += 1;
        }
        if next.0 < EST_ROUNDS {
            let unit = match body[next.1].unit {
                RegClass::Int => &mut ieu,
                RegClass::Flt => &mut feu,
            };
            if unit.queue.len() < IQ_CAPACITY {
                unit.queue.push_back(next);
                next.1 += 1;
                if next.1 == m {
                    next = (next.0 + 1, 0);
                }
            }
        }
    }
    if issued < EST_ROUNDS * m {
        // The model wedged (it should not); report no headroom so the
        // loop falls back to greedy untouched.
        return m as u64;
    }
    (round_max[EST_ROUNDS - 1] - round_max[EST_ROUNDS - 5]) / 4
}

// ---------------------------------------------------------------------------
// Solving
// ---------------------------------------------------------------------------

/// The literal satisfied when instruction `i` is *not* in stage `a`.
fn not_in_stage(stages: &[BVar], i: usize, a: i64) -> Lit {
    if a == 0 {
        Lit::pos(stages[i])
    } else {
        Lit::neg(stages[i])
    }
}

/// Try to schedule the body at initiation interval `ii`; returns the rows
/// and stages of a model the solver found and this function re-verified.
fn solve_ii(m: usize, edges: &[Edge], ii: i64, budget: u64) -> Option<(Vec<i64>, Vec<bool>)> {
    // A self-edge is feasible iff its latency fits in `dist` intervals.
    for e in edges {
        if e.from == e.to && e.lat > ii * e.dist {
            return None;
        }
    }
    let mut s = Solver::new();
    let zero = s.new_tvar();
    let rows: Vec<TVar> = (0..m).map(|_| s.new_tvar()).collect();
    let stages: Vec<BVar> = (0..m).map(|_| s.new_bool()).collect();
    for &r in &rows {
        s.assert_diff(r, zero, ii - 1); // r − zero ≤ II−1
        s.assert_diff(zero, r, 0); // zero − r ≤ 0
    }
    for e in edges {
        if e.from == e.to {
            continue;
        }
        for a in 0..2i64 {
            for b in 0..2i64 {
                // t_to + II·dist ≥ t_from + lat under stages (a, b):
                let c = ii * (e.dist + b - a) - e.lat;
                if c >= ii - 1 {
                    continue; // rows are within II−1 of each other
                }
                if c < -(ii - 1) {
                    // Unsatisfiable for any rows: forbid the combination.
                    s.add_clause(&[
                        not_in_stage(&stages, e.from, a),
                        not_in_stage(&stages, e.to, b),
                    ]);
                } else {
                    let diff = s.diff_leq(rows[e.from], rows[e.to], c);
                    s.add_clause(&[
                        not_in_stage(&stages, e.from, a),
                        not_in_stage(&stages, e.to, b),
                        diff,
                    ]);
                }
            }
        }
    }
    // One dispatch per cycle: all rows pairwise distinct.
    for i in 0..m {
        for j in i + 1..m {
            let a = s.diff_leq(rows[i], rows[j], -1);
            let b = s.diff_leq(rows[j], rows[i], -1);
            s.add_clause(&[a, b]);
        }
    }
    // Anchor: some instruction starts in stage 0 (breaks the pure
    // stage-translation symmetry and keeps the prologue meaningful).
    let anchor: Vec<Lit> = stages.iter().map(|&b| Lit::neg(b)).collect();
    s.add_clause(&anchor);
    match s.solve(Budget::conflicts(budget)) {
        Outcome::Sat(model) => {
            let z = model.time(zero);
            let r: Vec<i64> = rows.iter().map(|&t| model.time(t) - z).collect();
            let st: Vec<bool> = stages.iter().map(|&b| model.bool(b)).collect();
            validate(edges, ii, &r, &st).then_some((r, st))
        }
        Outcome::Unsat | Outcome::Unknown => None,
    }
}

/// Belt-and-braces replay of a model against the original constraints
/// (the emitter trusts nothing the solver says).
fn validate(edges: &[Edge], ii: i64, rows: &[i64], stages: &[bool]) -> bool {
    let m = rows.len();
    let mut seen = vec![false; ii as usize];
    for &r in rows {
        if !(0..ii).contains(&r) || std::mem::replace(&mut seen[r as usize], true) {
            return false;
        }
    }
    let t = |i: usize| rows[i] + ii * stages[i] as i64;
    edges
        .iter()
        .all(|e| t(e.to) + ii * e.dist >= t(e.from) + e.lat)
        && (0..m).any(|i| !stages[i])
}

/// Binary-search the minimal feasible II in `[m, greedy)`.
fn find_schedule(
    m: usize,
    edges: &[Edge],
    greedy: u64,
    budget: u64,
) -> Option<(i64, Vec<i64>, Vec<bool>)> {
    let mii = m as i64;
    let greedy = greedy as i64;
    if greedy <= mii {
        return None; // already at the dispatch bound
    }
    let mut lo = mii;
    let mut hi = (greedy - 1).min(mii + MAX_II_SLACK);
    let mut best = None;
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        match solve_ii(m, edges, mid, budget) {
            Some((rows, stages)) => {
                best = Some((mid, rows, stages));
                hi = mid - 1;
            }
            None => lo = mid + 1,
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

/// Rewrite the loop at block index `bi` into the scheduled shape. A pure
/// stage-0 schedule is an in-place reorder; a two-stage schedule becomes
/// prologue (original label) → kernel → epilogue, all targets explicit.
fn emit(func: &mut Function, bi: usize, rows: &[i64], stages: &[bool], els: Label) {
    let m = rows.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by_key(|&i| rows[i]);
    if stages.iter().all(|&s| !s) {
        let block = &mut func.blocks[bi];
        let term = block.insts.pop().expect("loop block has a terminator");
        let mut body: Vec<Option<Inst>> = std::mem::take(&mut block.insts)
            .into_iter()
            .map(Some)
            .collect();
        block.insts = order
            .iter()
            .map(|&i| body[i].take().expect("each body index used once"))
            .collect();
        block.insts.push(term);
        return;
    }
    let body: Vec<Inst> = func.blocks[bi].insts[..m].to_vec();
    let jni = func.blocks[bi].insts[m].clone();
    let k_label = func.add_block();
    let epi_label = func.add_block();
    let retarget = |mut kind: InstKind| {
        if let InstKind::BranchStream { target, els: e, .. } = &mut kind {
            *target = k_label;
            *e = epi_label;
        }
        kind
    };
    // Prologue: iteration 0's stage-0 instructions, in the original block
    // so outside predecessors keep entering at the loop's label. Its jNI
    // decides between another iteration (kernel) and the flush (epilogue).
    let mut prologue: Vec<Inst> = order
        .iter()
        .filter(|&&i| !stages[i])
        .map(|&i| body[i].clone())
        .collect();
    prologue.push(Inst {
        id: jni.id,
        kind: retarget(jni.kind.clone()),
    });
    func.blocks[bi].insts = prologue;
    // Kernel: every instruction once, in row order, with fresh ids.
    let mut kernel = Vec::with_capacity(m + 1);
    for &i in &order {
        let id = func.new_inst_id();
        kernel.push(Inst {
            id,
            kind: body[i].kind.clone(),
        });
    }
    let kt = func.new_inst_id();
    kernel.push(Inst {
        id: kt,
        kind: retarget(jni.kind.clone()),
    });
    func.block_mut(k_label).insts = kernel;
    // Epilogue: the final iteration's stage-1 instructions, then the
    // loop's original exit.
    let mut epilogue = Vec::new();
    for &i in order.iter().filter(|&&i| stages[i]) {
        let id = func.new_inst_id();
        epilogue.push(Inst {
            id,
            kind: body[i].kind.clone(),
        });
    }
    let jt = func.new_inst_id();
    epilogue.push(Inst {
        id: jt,
        kind: InstKind::Jump { target: els },
    });
    func.block_mut(epi_label).insts = epilogue;
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_ir::{BinOp, Operand};

    const BUDGET: u64 = 20_000;

    fn flt(f: &mut Function) -> Reg {
        f.new_vreg(RegClass::Flt)
    }

    /// entry → L: fv0 := pop; fv1 := fv0*fv0; push fv1; jNI → L | exit.
    fn squaring_loop() -> (Function, Label) {
        let mut f = Function::new("t", 0, 0);
        let entry = f.entry_label();
        let l = f.add_block();
        let exit = f.add_block();
        f.push(entry, InstKind::Jump { target: l });
        let v0 = flt(&mut f);
        let v1 = flt(&mut f);
        f.push(
            l,
            InstKind::Assign {
                dst: v0,
                src: RExpr::Op(Operand::Reg(Reg::flt(0))),
            },
        );
        f.push(
            l,
            InstKind::Assign {
                dst: v1,
                src: RExpr::Bin(BinOp::Mul, v0.into(), v0.into()),
            },
        );
        f.push(
            l,
            InstKind::Assign {
                dst: Reg::flt(0),
                src: RExpr::Op(Operand::Reg(v1)),
            },
        );
        f.push(
            l,
            InstKind::BranchStream {
                fifo: DataFifo::new(RegClass::Flt, 0),
                target: l,
                els: exit,
            },
        );
        f.push(exit, InstKind::Ret);
        (f, l)
    }

    #[test]
    fn squaring_loop_pipelines_to_the_dispatch_bound() {
        let (mut f, l) = squaring_loop();
        let report = modulo_schedule(&mut f, BUDGET, 6);
        assert_eq!(report.considered, 1);
        assert_eq!(report.pipelined, 1);
        let lr = report.loops()[0];
        assert_eq!(lr.label, l.0);
        assert_eq!((lr.insts, lr.mii), (3, 3));
        assert_eq!(lr.ii, 3, "greedy interval {} should shrink", lr.greedy);
        assert!(lr.greedy > 3);
        // Prologue (original label) + kernel + epilogue.
        assert_eq!(f.blocks.len(), 5);
        let kernel = &f.blocks[3];
        assert_eq!(kernel.insts.len(), 4, "all three insts plus jNI");
        let InstKind::BranchStream { target, els, .. } = kernel.insts[3].kind else {
            panic!("kernel ends in jNI");
        };
        assert_eq!(target, kernel.label, "kernel loops on itself");
        assert_eq!(els, f.blocks[4].label, "kernel exits to the epilogue");
        let epi = &f.blocks[4];
        assert!(matches!(
            epi.insts.last().unwrap().kind,
            InstKind::Jump { .. }
        ));
        // Prologue + epilogue together hold one copy of the body.
        let p_body = f.blocks[1].insts.len() - 1;
        let e_body = epi.insts.len() - 1;
        assert_eq!(p_body + e_body, 3);
        // Instruction ids stay unique across the rewrite.
        let mut ids: Vec<u32> = f.insts().map(|i| i.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), f.inst_count());
    }

    #[test]
    fn tight_recurrence_falls_back_to_greedy() {
        // v0 := (pop − v0)·v1 feeding itself: the carried chain needs
        // 2·RAW_LATENCY cycles per iteration, above any II we'd accept.
        let mut f = Function::new("t", 0, 0);
        let entry = f.entry_label();
        let l = f.add_block();
        let exit = f.add_block();
        f.push(entry, InstKind::Jump { target: l });
        let acc = f.new_vreg(RegClass::Flt);
        let tmp = f.new_vreg(RegClass::Flt);
        f.push(
            l,
            InstKind::Assign {
                dst: tmp,
                src: RExpr::Bin(BinOp::Sub, Reg::flt(0).into(), acc.into()),
            },
        );
        f.push(
            l,
            InstKind::Assign {
                dst: acc,
                src: RExpr::Bin(BinOp::Mul, tmp.into(), tmp.into()),
            },
        );
        f.push(
            l,
            InstKind::BranchStream {
                fifo: DataFifo::new(RegClass::Flt, 0),
                target: l,
                els: exit,
            },
        );
        f.push(exit, InstKind::Ret);
        let before = f.clone();
        let report = modulo_schedule(&mut f, BUDGET, 6);
        assert_eq!(report.considered, 1);
        assert_eq!(report.pipelined, 0);
        assert_eq!(f, before, "fallback leaves the function untouched");
        let lr = report.loops()[0];
        assert!(!lr.pipelined);
        assert_eq!(lr.ii, lr.greedy);
    }

    #[test]
    fn ineligible_loops_are_skipped() {
        // Compare-driven loop: not a jNI self-loop.
        let mut f = Function::new("t", 0, 0);
        let entry = f.entry_label();
        let l = f.add_block();
        let exit = f.add_block();
        f.push(entry, InstKind::Jump { target: l });
        let v = f.new_vreg(RegClass::Int);
        f.push(
            l,
            InstKind::Assign {
                dst: v,
                src: RExpr::Bin(BinOp::Add, v.into(), Operand::Imm(1)),
            },
        );
        f.push(
            l,
            InstKind::Compare {
                class: RegClass::Int,
                op: wm_ir::CmpOp::Lt,
                a: v.into(),
                b: Operand::Imm(10),
            },
        );
        f.push(
            l,
            InstKind::Branch {
                class: RegClass::Int,
                when: true,
                target: l,
                els: exit,
            },
        );
        f.push(exit, InstKind::Ret);
        let report = modulo_schedule(&mut f, BUDGET, 6);
        assert_eq!(report.considered, 0);
        assert_eq!(report.pipelined, 0);
    }

    #[test]
    fn in_place_reorder_when_one_stage_suffices() {
        // Crafted rows with every stage 0: emit is a pure permutation.
        let (mut f, l) = squaring_loop();
        let before: Vec<InstKind> = f.block(l).insts.iter().map(|i| i.kind.clone()).collect();
        let exit = f.blocks[2].label;
        emit(&mut f, 1, &[2, 0, 1], &[false, false, false], exit);
        assert_eq!(f.blocks.len(), 3, "no new blocks");
        let after: Vec<InstKind> = f.block(l).insts.iter().map(|i| i.kind.clone()).collect();
        assert_eq!(after[0], before[1]);
        assert_eq!(after[1], before[2]);
        assert_eq!(after[2], before[0]);
        assert_eq!(after[3], before[3], "terminator unchanged");
    }

    #[test]
    fn estimator_counts_interlock_bubbles() {
        let (f, l) = squaring_loop();
        let body = analyze(f.block(l)).expect("eligible");
        // pop → mul → push back-to-back: two bubbles per iteration.
        assert_eq!(greedy_interval(&body.insts, 6), 5);
    }

    #[test]
    fn paired_load_edges_use_memory_latency() {
        // load f0 := va; fv0 := pop·pop? No — single pop: fv0 := f0 + fv1.
        let mut f = Function::new("t", 0, 0);
        let entry = f.entry_label();
        let l = f.add_block();
        let exit = f.add_block();
        f.push(entry, InstKind::Jump { target: l });
        let va = f.new_vreg(RegClass::Int);
        let v0 = f.new_vreg(RegClass::Flt);
        f.push(
            l,
            InstKind::WLoad {
                fifo: DataFifo::new(RegClass::Flt, 0),
                addr: RExpr::Op(va.into()),
                width: wm_ir::Width::D8,
            },
        );
        f.push(
            l,
            InstKind::Assign {
                dst: v0,
                src: RExpr::Bin(BinOp::Add, Reg::flt(0).into(), v0.into()),
            },
        );
        f.push(
            l,
            InstKind::BranchStream {
                fifo: DataFifo::new(RegClass::Flt, 0),
                target: l,
                els: exit,
            },
        );
        f.push(exit, InstKind::Ret);
        let body = analyze(f.block(l)).expect("eligible");
        let edges = build_edges(&body.insts, 6).expect("pairing holds");
        assert!(
            edges.contains(&Edge {
                from: 0,
                to: 1,
                lat: 6,
                dist: 0
            }),
            "load→pop edge carries the memory latency: {edges:?}"
        );
    }
}
