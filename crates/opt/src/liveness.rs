//! Live-register analysis (backward may dataflow).

use std::collections::HashSet;

use wm_ir::{Function, InstKind, Reg};

/// Should `r` be tracked by liveness? FIFO-mapped cells and the zero
/// register carry no conventional value; the stack pointer is reserved and
/// treated as always live.
pub fn tracked(r: Reg) -> bool {
    !(r.is_fifo() || r.is_zero() || r == Reg::sp())
}

/// Registers used by `kind`, including the implicit use of the return-value
/// register at `Ret`.
pub fn uses_of(kind: &InstKind, func: &Function) -> Vec<Reg> {
    let mut u = kind.uses();
    if matches!(kind, InstKind::Ret) {
        if let Some(r) = func.ret {
            u.push(r);
        }
    }
    u.retain(|r| tracked(*r));
    u
}

/// Registers defined by `kind` (tracked only).
pub fn defs_of(kind: &InstKind) -> Vec<Reg> {
    let mut d = kind.defs();
    d.retain(|r| tracked(*r));
    d
}

/// Per-block live-in/out sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live on entry to each block (layout index).
    pub live_in: Vec<HashSet<Reg>>,
    /// Registers live on exit from each block.
    pub live_out: Vec<HashSet<Reg>>,
}

impl Liveness {
    /// Compute liveness for `func`.
    pub fn compute(func: &Function) -> Liveness {
        let n = func.blocks.len();
        let mut gen_: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        let mut kill: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        for (bi, block) in func.blocks.iter().enumerate() {
            for inst in &block.insts {
                for u in uses_of(&inst.kind, func) {
                    if !kill[bi].contains(&u) {
                        gen_[bi].insert(u);
                    }
                }
                for d in defs_of(&inst.kind) {
                    kill[bi].insert(d);
                }
            }
        }
        let mut live_in: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..n).rev() {
                let mut out = HashSet::new();
                for s in func.successors(bi) {
                    out.extend(live_in[s].iter().copied());
                }
                let mut inn: HashSet<Reg> = out
                    .iter()
                    .copied()
                    .filter(|r| !kill[bi].contains(r))
                    .collect();
                inn.extend(gen_[bi].iter().copied());
                if inn != live_in[bi] || out != live_out[bi] {
                    live_in[bi] = inn;
                    live_out[bi] = out;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Walk a block backwards yielding, for each instruction index, the set
    /// of registers live *after* that instruction.
    pub fn live_after(&self, func: &Function, bi: usize) -> Vec<HashSet<Reg>> {
        let block = &func.blocks[bi];
        let mut cur = self.live_out[bi].clone();
        let mut out = vec![HashSet::new(); block.insts.len()];
        for (i, inst) in block.insts.iter().enumerate().rev() {
            out[i] = cur.clone();
            for d in defs_of(&inst.kind) {
                cur.remove(&d);
            }
            for u in uses_of(&inst.kind, func) {
                cur.insert(u);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_ir::{BinOp, CmpOp, FuncBuilder, Operand, RExpr, RegClass};

    #[test]
    fn loop_carried_value_is_live_around_back_edge() {
        // i := 0; L: i := i + 1; if (i < n) goto L; ret
        let mut b = FuncBuilder::new("f", 1, 0);
        let n = b.func().params[0];
        let i = b.vreg(RegClass::Int);
        b.copy(i, Operand::Imm(0));
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(body);
        b.switch_to(body);
        b.assign(i, RExpr::Bin(BinOp::Add, i.into(), Operand::Imm(1)));
        b.branch_if(RegClass::Int, CmpOp::Lt, i.into(), n.into(), body, exit);
        b.switch_to(exit);
        b.emit(wm_ir::InstKind::Ret);
        let f = b.finish();
        let lv = Liveness::compute(&f);
        let body_i = 1;
        assert!(lv.live_in[body_i].contains(&i));
        assert!(lv.live_out[body_i].contains(&i));
        assert!(lv.live_in[body_i].contains(&n));
        // nothing is live into the exit block
        assert!(lv.live_in[2].is_empty());
    }

    #[test]
    fn ret_uses_return_register() {
        let mut b = FuncBuilder::new("f", 0, 0);
        let r = b.vreg(RegClass::Int);
        b.func_mut().ret = Some(r);
        b.copy(r, Operand::Imm(3));
        b.emit(wm_ir::InstKind::Ret);
        let f = b.finish();
        let lv = Liveness::compute(&f);
        // r is defined then used by Ret within the single block; live_in empty
        assert!(lv.live_in[0].is_empty());
        let after = lv.live_after(&f, 0);
        assert!(after[0].contains(&r), "live between def and ret");
    }

    #[test]
    fn fifo_registers_are_not_tracked() {
        assert!(!tracked(Reg::flt(0)));
        assert!(!tracked(Reg::int(31)));
        assert!(!tracked(Reg::sp()));
        assert!(tracked(Reg::int(5)));
        assert!(tracked(Reg::virt(RegClass::Flt, 3)));
    }
}
