//! Induction-variable and affine address-expression analysis.
//!
//! The recurrence and streaming algorithms need, for every memory reference
//! in a loop, the decomposition the paper writes as `iv = c*i + d`: which
//! induction variable drives the address, the byte coefficient per unit of
//! the induction variable (`cee`), and the constant part (`dee`) relative to
//! a *region base* (a global symbol or an invariant pointer register).

use std::collections::HashMap;

use wm_ir::{BinOp, CmpOp, Function, InstKind, MemRef, Operand, RExpr, Reg, RegClass, SymId};

use crate::cfg::{Dominators, Loop};

/// The memory region an address is based on; the partition key of the
/// paper's Step 1 ("partitions that reference disjoint sections of memory").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// A global symbol.
    Global(SymId),
    /// An invariant pointer register (e.g. a pointer parameter or the stack
    /// pointer).
    Reg(Reg),
    /// Statically unknown; per the paper such a reference "will be added to
    /// each partition as it potentially touches each".
    Unknown,
}

/// An address in the form `region + coeff*iv + inv.0*inv.1 + off`.
///
/// The `inv` term carries a *loop-invariant register* scaled by a constant
/// — the `i*n` part of a matrix reference `a[i*n + k]` analyzed in the
/// inner `k` loop. It is constant for the duration of the loop, so it
/// behaves like part of `dee`, except that two references are only
/// offset-comparable when their `inv` terms are identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine {
    /// The region base.
    pub region: Region,
    /// The driving induction variable, if the address varies with one.
    pub iv: Option<Reg>,
    /// Bytes per unit of `iv` — the paper's `cee` (0 when `iv` is `None`).
    pub coeff: i64,
    /// Loop-invariant register term: `reg * mult` bytes.
    pub inv: Option<(Reg, i64)>,
    /// Constant byte offset from the region base — the paper's `dee`.
    pub off: i64,
}

impl Affine {
    fn constant(off: i64) -> Affine {
        Affine {
            region: Region::Unknown,
            iv: None,
            coeff: 0,
            inv: None,
            off,
        }
    }

    fn is_pure_const(&self) -> bool {
        self.region == Region::Unknown && self.iv.is_none() && self.inv.is_none()
    }
}

/// A basic induction variable: a register with exactly one in-loop
/// definition of the form `r := r ± c` (or `r := r + s` for a
/// loop-invariant register `s` — the *symbolic-step* case the WM's
/// register-stride stream instructions can still exploit), executed once
/// per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndVar {
    /// The register.
    pub reg: Reg,
    /// Signed constant step per iteration (unused when `step_reg` is set).
    pub step: i64,
    /// Loop-invariant register step, for symbolic-stride loops.
    pub step_reg: Option<Reg>,
    /// Location `(block index, inst index)` of the increment.
    pub def: (usize, usize),
}

impl IndVar {
    /// Is the step a compile-time constant?
    pub fn is_const_step(&self) -> bool {
        self.step_reg.is_none()
    }
}

/// Where each register is defined: `(block index, inst index)` pairs.
pub type DefMap = HashMap<Reg, Vec<(usize, usize)>>;

/// Build the definition map for a whole function.
pub fn def_map(func: &Function) -> DefMap {
    let mut map: DefMap = HashMap::new();
    for (bi, block) in func.blocks.iter().enumerate() {
        for (ii, inst) in block.insts.iter().enumerate() {
            for d in inst.kind.defs() {
                map.entry(d).or_default().push((bi, ii));
            }
        }
    }
    map
}

/// Analysis context for one loop.
#[derive(Debug)]
pub struct LoopAnalysis<'a> {
    /// The function under analysis.
    pub func: &'a Function,
    /// The loop.
    pub lp: &'a Loop,
    /// Dominators of the function.
    pub dom: &'a Dominators,
    /// All register definitions in the function.
    pub defs: DefMap,
    /// Basic induction variables of the loop, by register.
    pub ivs: HashMap<Reg, IndVar>,
}

impl<'a> LoopAnalysis<'a> {
    /// Analyze `lp` in `func`.
    pub fn new(func: &'a Function, lp: &'a Loop, dom: &'a Dominators) -> LoopAnalysis<'a> {
        let defs = def_map(func);
        let mut ivs = HashMap::new();
        for (reg, sites) in &defs {
            let in_loop: Vec<(usize, usize)> = sites
                .iter()
                .copied()
                .filter(|(bi, _)| lp.contains(*bi))
                .collect();
            if in_loop.len() != 1 {
                continue;
            }
            let (bi, ii) = in_loop[0];
            // the increment must run once per iteration
            if !lp.latches.iter().all(|&l| dom.dominates(bi, l)) {
                continue;
            }
            let inst = &func.blocks[bi].insts[ii];
            if let InstKind::Assign {
                dst,
                src: RExpr::Bin(op, a, b),
            } = &inst.kind
            {
                if dst != reg {
                    continue;
                }
                let step = match (op, a, b) {
                    (BinOp::Add, Operand::Reg(r), Operand::Imm(c)) if r == reg => Some((*c, None)),
                    (BinOp::Add, Operand::Imm(c), Operand::Reg(r)) if r == reg => Some((*c, None)),
                    (BinOp::Sub, Operand::Reg(r), Operand::Imm(c)) if r == reg => Some((-*c, None)),
                    // symbolic step: r := r + s with s invariant in the loop
                    (BinOp::Add, Operand::Reg(r), Operand::Reg(st)) if r == reg && st != reg => {
                        Some((0, Some(*st)))
                    }
                    (BinOp::Add, Operand::Reg(st), Operand::Reg(r)) if r == reg && st != reg => {
                        Some((0, Some(*st)))
                    }
                    _ => None,
                };
                if let Some((step, step_reg)) = step {
                    // a symbolic step register must itself be loop-invariant
                    let invariant_step = match step_reg {
                        None => true,
                        Some(sr) => !defs
                            .get(&sr)
                            .map(|sites| sites.iter().any(|(bi, _)| lp.contains(*bi)))
                            .unwrap_or(false),
                    };
                    if (step != 0 || step_reg.is_some()) && invariant_step {
                        ivs.insert(
                            *reg,
                            IndVar {
                                reg: *reg,
                                step,
                                step_reg,
                                def: (bi, ii),
                            },
                        );
                    }
                }
            }
        }
        LoopAnalysis {
            func,
            lp,
            dom,
            defs,
            ivs,
        }
    }

    fn defs_in_loop(&self, r: Reg) -> Vec<(usize, usize)> {
        self.defs
            .get(&r)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|(bi, _)| self.lp.contains(*bi))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Evaluate an operand at use site `at` into affine form.
    pub fn eval_operand(&self, op: Operand, at: (usize, usize), depth: u32) -> Option<Affine> {
        match op {
            Operand::Imm(k) => Some(Affine::constant(k)),
            Operand::FImm(_) => None,
            Operand::Reg(r) => self.eval_reg(r, at, depth),
        }
    }

    fn eval_reg(&self, r: Reg, at: (usize, usize), depth: u32) -> Option<Affine> {
        if depth == 0 || r.class == RegClass::Flt {
            return None;
        }
        if r.is_zero() {
            return Some(Affine::constant(0));
        }
        if let Some(iv) = self.ivs.get(&r) {
            // A use positioned after the increment sees `iv + step` relative
            // to the value the IV held at the top of the iteration; the
            // `dee` of such a reference must account for it.
            let (dbi, dii) = iv.def;
            let after = if at.0 == dbi {
                at.1 > dii
            } else {
                self.lp.contains(at.0) && self.dom.dominates(dbi, at.0)
            };
            if after && !iv.is_const_step() {
                return None; // offset would be symbolic
            }
            return Some(Affine {
                region: Region::Unknown,
                iv: Some(r),
                coeff: 1,
                inv: None,
                off: if after { iv.step } else { 0 },
            });
        }
        let in_loop = self.defs_in_loop(r);
        if in_loop.is_empty() {
            return Some(self.resolve_invariant(r, depth));
        }
        if in_loop.len() != 1 {
            return None;
        }
        let (dbi, dii) = in_loop[0];
        // The definition must dominate the use for per-iteration evaluation.
        let dominates = if dbi == at.0 {
            dii < at.1
        } else {
            self.dom.dominates(dbi, at.0)
        };
        if !dominates {
            return None;
        }
        match &self.func.blocks[dbi].insts[dii].kind {
            InstKind::Assign { src, .. } => self.eval_expr(src, (dbi, dii), depth - 1),
            InstKind::LoadAddr { sym, disp, .. } => Some(Affine {
                region: Region::Global(*sym),
                iv: None,
                coeff: 0,
                inv: None,
                off: *disp,
            }),
            _ => None,
        }
    }

    /// Resolve a loop-invariant register: through a unique reaching
    /// definition it may be a global address or a constant; otherwise it is
    /// an opaque invariant base.
    fn resolve_invariant(&self, r: Reg, depth: u32) -> Affine {
        let sites = self.defs.get(&r).cloned().unwrap_or_default();
        if sites.len() == 1 {
            let (bi, ii) = sites[0];
            match &self.func.blocks[bi].insts[ii].kind {
                InstKind::LoadAddr { sym, disp, .. } => {
                    return Affine {
                        region: Region::Global(*sym),
                        iv: None,
                        coeff: 0,
                        inv: None,
                        off: *disp,
                    }
                }
                InstKind::Assign { src, .. }
                    // chase invariant chains like `r := (sp) + 16`
                    if depth > 0 => {
                        if let Some(a) = self.eval_invariant_expr(src, depth - 1) {
                            return a;
                        }
                    }
                _ => {}
            }
        }
        if sites.is_empty() && r == Reg::sp() {
            return Affine {
                region: Region::Reg(r),
                iv: None,
                coeff: 0,
                inv: None,
                off: 0,
            };
        }
        Affine {
            region: Region::Reg(r),
            iv: None,
            coeff: 0,
            inv: None,
            off: 0,
        }
    }

    /// Evaluate an expression all of whose registers are loop-invariant.
    fn eval_invariant_expr(&self, e: &RExpr, depth: u32) -> Option<Affine> {
        let eval = |op: Operand| -> Option<Affine> {
            match op {
                Operand::Imm(k) => Some(Affine::constant(k)),
                Operand::FImm(_) => None,
                Operand::Reg(r) => {
                    if !self.defs_in_loop(r).is_empty() {
                        return None;
                    }
                    if r.is_zero() {
                        return Some(Affine::constant(0));
                    }
                    Some(self.resolve_invariant(r, depth))
                }
            }
        };
        match e {
            RExpr::Op(a) => eval(*a),
            RExpr::Bin(op, a, b) => combine(*op, eval(*a)?, eval(*b)?),
            RExpr::Dual {
                inner,
                a,
                b,
                outer,
                c,
            } => {
                let ab = combine(*inner, eval(*a)?, eval(*b)?)?;
                combine(*outer, ab, eval(*c)?)
            }
            RExpr::Un(..) => None,
        }
    }

    /// Evaluate an RTL expression at `at` into affine form.
    pub fn eval_expr(&self, e: &RExpr, at: (usize, usize), depth: u32) -> Option<Affine> {
        match e {
            RExpr::Op(a) => self.eval_operand(*a, at, depth),
            RExpr::Un(..) => None,
            RExpr::Bin(op, a, b) => combine(
                *op,
                self.eval_operand(*a, at, depth)?,
                self.eval_operand(*b, at, depth)?,
            ),
            RExpr::Dual {
                inner,
                a,
                b,
                outer,
                c,
            } => {
                let ab = combine(
                    *inner,
                    self.eval_operand(*a, at, depth)?,
                    self.eval_operand(*b, at, depth)?,
                )?;
                combine(*outer, ab, self.eval_operand(*c, at, depth)?)
            }
        }
    }

    /// Evaluate a generic structured memory reference at `at`.
    pub fn eval_memref(&self, mem: &MemRef, at: (usize, usize), depth: u32) -> Option<Affine> {
        let mut acc = match mem.sym {
            Some(sym) => Affine {
                region: Region::Global(sym),
                iv: None,
                coeff: 0,
                inv: None,
                off: mem.disp,
            },
            None => Affine::constant(mem.disp),
        };
        if let Some(base) = mem.base {
            let b = self.eval_reg(base, at, depth)?;
            acc = combine(BinOp::Add, acc, b)?;
        }
        if let Some((idx, sc)) = mem.index {
            let i = self.eval_reg(idx, at, depth)?;
            let i = scale(i, 1i64 << sc)?;
            acc = combine(BinOp::Add, acc, i)?;
        }
        Some(acc)
    }

    /// The signed per-iteration byte stride of an affine address
    /// (`None` when the loop step is a register).
    pub fn stride_of(&self, a: &Affine) -> Option<i64> {
        let iv = a.iv?;
        let ind = self.ivs.get(&iv)?;
        if !ind.is_const_step() {
            return None;
        }
        Some(a.coeff * ind.step)
    }

    /// The symbolic step register of the IV driving `a`, if any.
    pub fn sym_step_of(&self, a: &Affine) -> Option<Reg> {
        let iv = a.iv?;
        self.ivs.get(&iv)?.step_reg
    }
}

/// Scaling a value-like affine by a constant. An opaque invariant register
/// "region" demotes to an invariant term (`i * 40` is a value, not a
/// pointer); a global region cannot be scaled.
fn scale(a: Affine, m: i64) -> Option<Affine> {
    let inv = match (a.region, a.inv) {
        (Region::Global(_), _) => return None,
        (Region::Reg(r), None) => Some((r, m)),
        (Region::Reg(_), Some(_)) => return None,
        (Region::Unknown, Some((r, k))) => Some((r, k * m)),
        (Region::Unknown, None) => None,
    };
    Some(Affine {
        region: Region::Unknown,
        iv: a.iv,
        coeff: a.coeff * m,
        inv,
        off: a.off * m,
    })
}

/// Combine two affine values under a binary operator.
fn combine(op: BinOp, a: Affine, b: Affine) -> Option<Affine> {
    match op {
        BinOp::Add => {
            // Merge regions; when both operands carry an opaque invariant
            // register, the left one stays the region base and the right
            // one demotes to an invariant value term (`p + x`).
            let (region, extra_inv) = match (a.region, b.region) {
                (r, Region::Unknown) => (r, None),
                (Region::Unknown, r) => (r, None),
                (Region::Global(g), Region::Reg(v)) | (Region::Reg(v), Region::Global(g)) => {
                    (Region::Global(g), Some((v, 1)))
                }
                (Region::Reg(p), Region::Reg(v)) => (Region::Reg(p), Some((v, 1))),
                _ => return None, // adding two globals
            };
            let iv = match (a.iv, b.iv) {
                (x, None) => x,
                (None, y) => y,
                (Some(x), Some(y)) if x == y => Some(x),
                _ => return None,
            };
            let coeff = if a.iv.is_some() && b.iv.is_some() {
                a.coeff + b.coeff
            } else if a.iv.is_some() {
                a.coeff
            } else {
                b.coeff
            };
            let inv = match (a.inv, b.inv, extra_inv) {
                (x, None, None) => x,
                (None, y, None) => y,
                (None, None, z) => z,
                (Some((r1, k1)), Some((r2, k2)), None) if r1 == r2 => Some((r1, k1 + k2)),
                _ => return None, // more than one distinct invariant term
            };
            Some(Affine {
                region,
                iv,
                coeff,
                inv,
                off: a.off + b.off,
            })
        }
        BinOp::Sub => {
            if b.region != Region::Unknown {
                return None; // subtracting a pointer
            }
            let neg = Affine {
                region: Region::Unknown,
                iv: b.iv,
                coeff: -b.coeff,
                inv: b.inv.map(|(r, k)| (r, -k)),
                off: -b.off,
            };
            combine(BinOp::Add, a, neg)
        }
        BinOp::Shl => {
            if !b.is_pure_const() {
                return None;
            }
            let m = 1i64.checked_shl(b.off as u32)?;
            scale(a, m)
        }
        BinOp::Mul => {
            let (val, k) = if b.is_pure_const() {
                (a, b.off)
            } else if a.is_pure_const() {
                (b, a.off)
            } else {
                return None;
            };
            scale(val, k)
        }
        _ => None,
    }
}

/// The loop-bottom test, decomposed for trip-count reasoning.
#[derive(Debug, Clone, Copy)]
pub struct LatchInfo {
    /// The induction variable tested.
    pub iv: IndVar,
    /// Comparison that must hold (on the already-incremented IV) for the
    /// loop to continue, normalized to `iv cmp bound`.
    pub cmp: CmpOp,
    /// The loop-invariant bound.
    pub bound: Operand,
    /// Location of the Compare instruction in the latch block.
    pub compare: (usize, usize),
    /// Location of the Branch instruction in the latch block.
    pub branch: (usize, usize),
}

/// Recognize the single-latch bottom test `iv cmp bound` of a loop.
///
/// Returns `None` when the loop has multiple latches or the test does not
/// match the canonical shape, in which case the trip count is unknown and
/// streaming must use unbounded streams.
pub fn analyze_latch(la: &LoopAnalysis<'_>) -> Option<LatchInfo> {
    if la.lp.latches.len() != 1 {
        return None;
    }
    let latch = la.lp.latches[0];
    let block = &la.func.blocks[latch];
    let header_label = la.func.blocks[la.lp.header].label;
    let bii = block.insts.len().checked_sub(1)?;
    let (when, target, els) = match &block.insts[bii].kind {
        InstKind::Branch {
            class: RegClass::Int,
            when,
            target,
            els,
        } => (*when, *target, *els),
        _ => return None,
    };
    let continue_on_true = if target == header_label {
        when
    } else if els == header_label {
        !when
    } else {
        return None;
    };
    // Find the last integer Compare in the latch block before the branch.
    let (cii, (op, a, b)) = block.insts[..bii]
        .iter()
        .enumerate()
        .rev()
        .find_map(|(i, inst)| match &inst.kind {
            InstKind::Compare {
                class: RegClass::Int,
                op,
                a,
                b,
            } => Some((i, (*op, *a, *b))),
            _ => None,
        })?;
    let op = if continue_on_true { op } else { op.negate() };
    // Normalize so the IV is on the left.
    let (op, ivreg, bound) = match (a, b) {
        (Operand::Reg(r), other) if la.ivs.contains_key(&r) => (op, r, other),
        (other, Operand::Reg(r)) if la.ivs.contains_key(&r) => (op.swap(), r, other),
        _ => return None,
    };
    // The bound must be loop-invariant.
    if let Operand::Reg(r) = bound {
        if !la.defs_in_loop(r).is_empty() {
            return None;
        }
    }
    let iv = la.ivs[&ivreg];
    // Direction sanity: a countable loop steps toward its bound. A
    // symbolic (register) step is accepted for upward loops — if the step
    // were zero or negative the source loop would not terminate anyway, so
    // assuming it positive preserves the program's own contract.
    let ok = match (op, iv.is_const_step()) {
        (CmpOp::Lt | CmpOp::Le, true) => iv.step > 0,
        (CmpOp::Gt | CmpOp::Ge, true) => iv.step < 0,
        (CmpOp::Ne, true) => iv.step == 1 || iv.step == -1,
        (CmpOp::Lt | CmpOp::Le, false) => true,
        _ => false,
    };
    if !ok {
        return None;
    }
    Some(LatchInfo {
        iv,
        cmp: op,
        bound,
        compare: (latch, cii),
        branch: (latch, bii),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{natural_loops, Dominators};
    use wm_ir::Width;

    /// Lower the Livermore-5 kernel and return everything needed to analyze
    /// its single loop.
    fn loop5() -> (Function, wm_ir::Module) {
        let m = wm_frontend::compile(
            r"
            double x[1000]; double y[1000]; double z[1000];
            void loop5(int n) {
                int i;
                for (i = 2; i < n; i++)
                    x[i] = z[i] * (y[i] - x[i-1]);
            }
        ",
        )
        .unwrap();
        let f = m.function_named("loop5").unwrap().clone();
        (f, m)
    }

    #[test]
    fn finds_induction_variable_and_latch() {
        let (f, _m) = loop5();
        let dom = Dominators::compute(&f);
        let loops = natural_loops(&f, &dom);
        assert_eq!(loops.len(), 1);
        let la = LoopAnalysis::new(&f, &loops[0], &dom);
        assert_eq!(la.ivs.len(), 1, "exactly one basic IV: i");
        let iv = la.ivs.values().next().unwrap();
        assert_eq!(iv.step, 1);
        let latch = analyze_latch(&la).expect("canonical bottom test");
        assert_eq!(latch.cmp, CmpOp::Lt);
        assert_eq!(latch.iv.reg, iv.reg);
    }

    #[test]
    fn memory_references_have_paper_affine_forms() {
        let (f, m) = loop5();
        let dom = Dominators::compute(&f);
        let loops = natural_loops(&f, &dom);
        let la = LoopAnalysis::new(&f, &loops[0], &dom);
        let x = m.lookup("x").unwrap();
        let iv = *la.ivs.keys().next().unwrap();

        // Collect the affine decompositions of all loop memory references.
        let mut forms = Vec::new();
        for &bi in &loops[0].blocks {
            for (ii, inst) in f.blocks[bi].insts.iter().enumerate() {
                if let Some(wm_ir::MemAccess::Generic { mem, is_load }) = inst.kind.mem_access() {
                    let a = la.eval_memref(mem, (bi, ii), 8).expect("affine");
                    forms.push((a, is_load, mem.width));
                }
            }
        }
        assert_eq!(forms.len(), 4);
        // Every reference: cee = 8, driven by i.
        for (a, _, w) in &forms {
            assert_eq!(a.coeff, 8, "cee is 8 for doubles: {a:?}");
            assert_eq!(a.iv, Some(iv));
            assert_eq!(*w, Width::D8);
        }
        // The x[i-1] read has dee = _x - 8; the x[i] write has dee = _x.
        let x_reads: Vec<_> = forms
            .iter()
            .filter(|(a, is_load, _)| a.region == Region::Global(x) && *is_load)
            .collect();
        assert_eq!(x_reads.len(), 1);
        assert_eq!(x_reads[0].0.off, -8);
        let x_writes: Vec<_> = forms
            .iter()
            .filter(|(a, is_load, _)| a.region == Region::Global(x) && !*is_load)
            .collect();
        assert_eq!(x_writes.len(), 1);
        assert_eq!(x_writes[0].0.off, 0);
    }

    #[test]
    fn stride_is_cee_times_loop_increment() {
        let (f, _m) = loop5();
        let dom = Dominators::compute(&f);
        let loops = natural_loops(&f, &dom);
        let la = LoopAnalysis::new(&f, &loops[0], &dom);
        let iv = *la.ivs.keys().next().unwrap();
        let a = Affine {
            region: Region::Unknown,
            iv: Some(iv),
            coeff: 8,
            inv: None,
            off: 0,
        };
        assert_eq!(la.stride_of(&a), Some(8));
    }

    #[test]
    fn combine_rejects_pointer_plus_pointer() {
        let g = Affine {
            region: Region::Global(SymId(0)),
            iv: None,
            coeff: 0,
            inv: None,
            off: 0,
        };
        assert!(combine(BinOp::Add, g, g).is_none());
        assert!(combine(BinOp::Sub, Affine::constant(4), g).is_none());
        // but pointer + const works
        let r = combine(BinOp::Add, g, Affine::constant(12)).unwrap();
        assert_eq!(r.off, 12);
        assert_eq!(r.region, Region::Global(SymId(0)));
    }
}
