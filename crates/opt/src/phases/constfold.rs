//! Constant folding and algebraic simplification.

use wm_ir::{BinOp, Function, InstKind, Operand, RExpr, Reg, UnOp};

/// Fold constant subexpressions and apply safe algebraic identities.
/// Floating-point identities are left alone (NaN / signed-zero hazards);
/// FIFO-register operands are never dropped (reading one dequeues).
pub fn fold_constants(func: &mut Function) -> bool {
    let mut changed = false;
    for inst in func.insts_mut() {
        if let InstKind::Assign { src, .. } = &mut inst.kind {
            if let Some(new) = fold_expr(src) {
                *src = new;
                changed = true;
            }
        }
        if let InstKind::WLoad { addr, .. } | InstKind::WStore { addr, .. } = &mut inst.kind {
            if let Some(new) = fold_expr(addr) {
                *addr = new;
                changed = true;
            }
        }
    }
    changed
}

fn is_droppable(op: Operand) -> bool {
    match op {
        Operand::Reg(r) => !r.is_fifo(),
        _ => true,
    }
}

fn fold_expr(e: &RExpr) -> Option<RExpr> {
    match e {
        RExpr::Op(Operand::Reg(r)) if r.is_zero() && r.class == wm_ir::RegClass::Int => {
            Some(RExpr::Op(Operand::Imm(0)))
        }
        RExpr::Un(op, a) => fold_un(*op, *a),
        RExpr::Bin(op, a, b) => fold_bin(*op, *a, *b),
        RExpr::Dual {
            inner,
            a,
            b,
            outer,
            c,
        } => {
            // Fold the inner pair first; a fully-folded inner collapses the
            // dual into a single binary operation.
            if let Some(folded) = fold_bin(*inner, *a, *b) {
                match folded {
                    RExpr::Op(x) => {
                        return fold_bin(*outer, x, *c).or(Some(RExpr::Bin(*outer, x, *c)))
                    }
                    RExpr::Bin(i2, a2, b2) => {
                        return Some(RExpr::Dual {
                            inner: i2,
                            a: a2,
                            b: b2,
                            outer: *outer,
                            c: *c,
                        })
                    }
                    _ => {}
                }
            }
            None
        }
        _ => None,
    }
}

fn fold_un(op: UnOp, a: Operand) -> Option<RExpr> {
    match (op, a) {
        (UnOp::Neg, Operand::Imm(v)) => Some(RExpr::Op(Operand::Imm(v.wrapping_neg()))),
        (UnOp::Not, Operand::Imm(v)) => Some(RExpr::Op(Operand::Imm(!v))),
        (UnOp::FNeg, Operand::FImm(v)) => Some(RExpr::Op(Operand::FImm(-v))),
        (UnOp::IntToFlt, Operand::Imm(v)) => Some(RExpr::Op(Operand::FImm(v as f64))),
        (UnOp::FltToInt, Operand::FImm(v)) => Some(RExpr::Op(Operand::Imm(v as i64))),
        _ => None,
    }
}

fn fold_bin(op: BinOp, a: Operand, b: Operand) -> Option<RExpr> {
    // full constant folding
    if let (Operand::Imm(x), Operand::Imm(y)) = (a, b) {
        if let Some(v) = op.fold_int(x, y) {
            return Some(RExpr::Op(Operand::Imm(v)));
        }
    }
    if let (Operand::FImm(x), Operand::FImm(y)) = (a, b) {
        if let Some(v) = op.fold_flt(x, y) {
            return Some(RExpr::Op(Operand::FImm(v)));
        }
    }
    // integer identities (never drop a FIFO read)
    match (op, a, b) {
        (BinOp::Add, x, Operand::Imm(0)) if is_droppable(x) => Some(RExpr::Op(x)),
        (BinOp::Add, Operand::Imm(0), x) if is_droppable(x) => Some(RExpr::Op(x)),
        (BinOp::Sub, x, Operand::Imm(0)) if is_droppable(x) => Some(RExpr::Op(x)),
        (BinOp::Mul, x, Operand::Imm(1)) if is_droppable(x) => Some(RExpr::Op(x)),
        (BinOp::Mul, Operand::Imm(1), x) if is_droppable(x) => Some(RExpr::Op(x)),
        (BinOp::Mul, x, Operand::Imm(0)) if is_droppable(x) => Some(RExpr::Op(Operand::Imm(0))),
        (BinOp::Mul, Operand::Imm(0), x) if is_droppable(x) => Some(RExpr::Op(Operand::Imm(0))),
        (BinOp::Shl, x, Operand::Imm(0)) if is_droppable(x) => Some(RExpr::Op(x)),
        (BinOp::Shr, x, Operand::Imm(0)) if is_droppable(x) => Some(RExpr::Op(x)),
        (BinOp::Mul, x, Operand::Imm(k)) if k > 1 && (k as u64).is_power_of_two() => Some(
            RExpr::Bin(BinOp::Shl, x, Operand::Imm(k.trailing_zeros() as i64)),
        ),
        // x - x = 0 for plain registers
        (BinOp::Sub, Operand::Reg(x), Operand::Reg(y)) if x == y && !x.is_fifo() => {
            Some(RExpr::Op(Operand::Imm(0)))
        }
        _ => None,
    }
}

/// Fold a `Compare` between two integer constants together with the
/// `Branch` that consumes it into an unconditional jump. The pair must be
/// adjacent so the condition-code FIFO discipline is preserved.
pub fn fold_constant_branches(func: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut func.blocks {
        let n = block.insts.len();
        if n < 2 {
            continue;
        }
        let (cmp_i, br_i) = (n - 2, n - 1);
        let verdict = match (&block.insts[cmp_i].kind, &block.insts[br_i].kind) {
            (
                InstKind::Compare {
                    class: c1,
                    op,
                    a: Operand::Imm(x),
                    b: Operand::Imm(y),
                },
                InstKind::Branch {
                    class: c2,
                    when,
                    target,
                    els,
                },
            ) if c1 == c2 => {
                let hold = op.eval_int(*x, *y);
                let dest = if hold == *when { *target } else { *els };
                Some(dest)
            }
            _ => None,
        };
        if let Some(dest) = verdict {
            block.insts[cmp_i].kind = InstKind::Nop;
            block.insts[br_i].kind = InstKind::Jump { target: dest };
            changed = true;
        }
    }
    if changed {
        func.compact();
    }
    changed
}

/// Global constant propagation for single-definition registers: a virtual
/// register defined exactly once as `r := imm` can replace every dominated
/// use. (With a single definition and reachable uses, the definition
/// dominates every use in code produced by the front end; we verify with
/// the dominator tree.)
pub fn propagate_single_def_constants(func: &mut Function) -> bool {
    use crate::affine::def_map;
    use crate::cfg::Dominators;

    let defs = def_map(func);
    let dom = Dominators::compute(func);
    let mut subs: Vec<(Reg, Operand, (usize, usize))> = Vec::new();
    for (reg, sites) in &defs {
        if !reg.is_virt() || sites.len() != 1 {
            continue;
        }
        let (bi, ii) = sites[0];
        if let InstKind::Assign {
            src: RExpr::Op(op @ (Operand::Imm(_) | Operand::FImm(_))),
            ..
        } = &func.blocks[bi].insts[ii].kind
        {
            subs.push((*reg, *op, (bi, ii)));
        }
    }
    let mut changed = false;
    for (reg, op, (dbi, dii)) in subs {
        for bi in 0..func.blocks.len() {
            if !dom.is_reachable(bi) {
                continue;
            }
            for ii in 0..func.blocks[bi].insts.len() {
                let dominated = if bi == dbi {
                    ii > dii
                } else {
                    dom.dominates(dbi, bi)
                };
                if !dominated {
                    continue;
                }
                let inst = &mut func.blocks[bi].insts[ii];
                if inst.kind.uses().contains(&reg) {
                    inst.kind.substitute_use(reg, op);
                    changed = true;
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_ir::{CmpOp, FuncBuilder, Operand, RegClass};

    #[test]
    fn folds_arithmetic() {
        assert_eq!(
            fold_bin(BinOp::Add, Operand::Imm(2), Operand::Imm(3)),
            Some(RExpr::Op(Operand::Imm(5)))
        );
        assert_eq!(
            fold_bin(BinOp::Mul, Operand::Reg(Reg::int(5)), Operand::Imm(8)),
            Some(RExpr::Bin(
                BinOp::Shl,
                Operand::Reg(Reg::int(5)),
                Operand::Imm(3)
            ))
        );
    }

    #[test]
    fn does_not_drop_fifo_reads() {
        // f0 * 0 must NOT fold to 0: the dequeue is a side effect.
        assert_eq!(
            fold_bin(BinOp::Mul, Operand::Reg(Reg::flt(0)), Operand::Imm(0)),
            None
        );
        assert_eq!(
            fold_bin(BinOp::Add, Operand::Reg(Reg::int(0)), Operand::Imm(0)),
            None
        );
    }

    #[test]
    fn folds_constant_branch_pairs() {
        let mut b = FuncBuilder::new("f", 0, 0);
        let t = b.new_block();
        let e = b.new_block();
        b.branch_if(
            RegClass::Int,
            CmpOp::Lt,
            Operand::Imm(1),
            Operand::Imm(2),
            t,
            e,
        );
        b.switch_to(t);
        b.emit(InstKind::Ret);
        b.switch_to(e);
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(fold_constant_branches(&mut f));
        // entry now ends in an unconditional jump to the taken target
        let last = f.blocks[0].insts.last().unwrap();
        assert_eq!(last.kind, InstKind::Jump { target: t });
        // untaken block is unreachable and got compacted away
        assert_eq!(f.blocks.len(), 2);
    }

    #[test]
    fn propagates_single_def_constants() {
        let mut b = FuncBuilder::new("f", 0, 0);
        let c = b.vreg(RegClass::Int);
        b.copy(c, Operand::Imm(42));
        let r = b.bin(BinOp::Add, c.into(), Operand::Imm(1));
        let _ = r;
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(propagate_single_def_constants(&mut f));
        assert!(fold_constants(&mut f));
        let kinds: Vec<_> = f.insts().map(|i| i.kind.clone()).collect();
        assert!(kinds.iter().any(|k| matches!(
            k,
            InstKind::Assign {
                src: RExpr::Op(Operand::Imm(43)),
                ..
            }
        )));
    }

    #[test]
    fn folds_dual_with_constant_inner() {
        let e = RExpr::Dual {
            inner: BinOp::Shl,
            a: Operand::Imm(2),
            b: Operand::Imm(3),
            outer: BinOp::Add,
            c: Operand::Reg(Reg::int(4)),
        };
        let folded = fold_expr(&e).unwrap();
        assert_eq!(
            folded,
            RExpr::Bin(BinOp::Add, Operand::Imm(16), Operand::Reg(Reg::int(4)))
        );
    }
}
