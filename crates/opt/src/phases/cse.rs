//! Local common-subexpression elimination.

use std::collections::HashMap;

use wm_ir::{Function, InstKind, Operand, RExpr, Reg};

/// A hashable key for pure expressions. Floating-point immediates are keyed
/// by their bit patterns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Reg(Reg),
    Imm(i64),
    FBits(u64),
}

fn key_of(op: Operand) -> Key {
    match op {
        Operand::Reg(r) => Key::Reg(r),
        Operand::Imm(v) => Key::Imm(v),
        Operand::FImm(v) => Key::FBits(v.to_bits()),
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ExprKey {
    Un(wm_ir::UnOp, Key),
    Bin(wm_ir::BinOp, Key, Key),
    Dual(wm_ir::BinOp, Key, Key, wm_ir::BinOp, Key),
    Addr(wm_ir::SymId, i64),
}

/// Eliminate repeated pure computations within each basic block, rewriting
/// later occurrences into copies of the first result. Expressions touching
/// FIFO registers are skipped (each read dequeues).
pub fn eliminate_common_subexpressions(func: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut func.blocks {
        let mut avail: HashMap<ExprKey, Reg> = HashMap::new();
        for inst in &mut block.insts {
            let key = match &inst.kind {
                InstKind::Assign { dst, src }
                    if !dst.is_fifo() && !dst.is_zero() && !src.regs().any(|r| r.is_fifo()) =>
                {
                    match src {
                        RExpr::Un(op, a) => Some(ExprKey::Un(*op, key_of(*a))),
                        RExpr::Bin(op, a, b) => {
                            let (ka, kb) = (key_of(*a), key_of(*b));
                            // canonicalize commutative operand order
                            if op.is_commutative() && format!("{kb:?}") < format!("{ka:?}") {
                                Some(ExprKey::Bin(*op, kb, ka))
                            } else {
                                Some(ExprKey::Bin(*op, ka, kb))
                            }
                        }
                        RExpr::Dual {
                            inner,
                            a,
                            b,
                            outer,
                            c,
                        } => Some(ExprKey::Dual(
                            *inner,
                            key_of(*a),
                            key_of(*b),
                            *outer,
                            key_of(*c),
                        )),
                        RExpr::Op(_) => None,
                    }
                }
                InstKind::LoadAddr { sym, disp, .. } => Some(ExprKey::Addr(*sym, *disp)),
                _ => None,
            };
            // rewrite a repeated expression into a copy of the first result
            let mut rewrote = false;
            if let Some(key) = &key {
                if let Some(&prev) = avail.get(key) {
                    let dst = match &inst.kind {
                        InstKind::Assign { dst, .. } => *dst,
                        InstKind::LoadAddr { dst, .. } => *dst,
                        _ => unreachable!(),
                    };
                    if prev != dst {
                        inst.kind = InstKind::Assign {
                            dst,
                            src: RExpr::Op(Operand::Reg(prev)),
                        };
                        changed = true;
                        rewrote = true;
                    }
                }
            }
            // kill available expressions whose operands are redefined
            let defs = inst.kind.defs();
            if !defs.is_empty() {
                avail.retain(|k, v| {
                    if defs.contains(v) {
                        return false;
                    }
                    let reads = |key: &Key| matches!(key, Key::Reg(r) if defs.contains(r));
                    !match k {
                        ExprKey::Un(_, a) => reads(a),
                        ExprKey::Bin(_, a, b) => reads(a) || reads(b),
                        ExprKey::Dual(_, a, b, _, c) => reads(a) || reads(b) || reads(c),
                        ExprKey::Addr(..) => false,
                    }
                });
            }
            // record the new expression, unless its own destination feeds it
            if let (Some(key), false) = (key, rewrote) {
                let dst = match &inst.kind {
                    InstKind::Assign { dst, .. } => *dst,
                    InstKind::LoadAddr { dst, .. } => *dst,
                    _ => unreachable!(),
                };
                if !inst.kind.uses().contains(&dst) {
                    avail.entry(key).or_insert(dst);
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_ir::{BinOp, FuncBuilder, RegClass};

    #[test]
    fn duplicate_expression_becomes_copy() {
        let mut b = FuncBuilder::new("f", 2, 0);
        let x = b.func().params[0];
        let y = b.func().params[1];
        let t1 = b.bin(BinOp::Add, x.into(), y.into());
        let t2 = b.bin(BinOp::Add, x.into(), y.into());
        let _ = (t1, t2);
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(eliminate_common_subexpressions(&mut f));
        assert!(f.insts().any(|i| matches!(
            &i.kind,
            InstKind::Assign { src: RExpr::Op(Operand::Reg(r)), .. } if *r == t1
        )));
    }

    #[test]
    fn commutative_operands_are_canonicalized() {
        let mut b = FuncBuilder::new("f", 2, 0);
        let x = b.func().params[0];
        let y = b.func().params[1];
        b.bin(BinOp::Add, x.into(), y.into());
        b.bin(BinOp::Add, y.into(), x.into());
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(eliminate_common_subexpressions(&mut f));
    }

    #[test]
    fn redefinition_invalidates() {
        let mut b = FuncBuilder::new("f", 2, 0);
        let x = b.func().params[0];
        let y = b.func().params[1];
        b.bin(BinOp::Sub, x.into(), y.into());
        b.copy(x, Operand::Imm(0));
        b.bin(BinOp::Sub, x.into(), y.into());
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(!eliminate_common_subexpressions(&mut f));
    }

    #[test]
    fn loadaddr_is_deduplicated() {
        let mut b = FuncBuilder::new("f", 0, 0);
        let sym = wm_ir::SymId(0);
        let r1 = b.vreg(RegClass::Int);
        let r2 = b.vreg(RegClass::Int);
        b.emit(InstKind::LoadAddr {
            dst: r1,
            sym,
            disp: 0,
        });
        b.emit(InstKind::LoadAddr {
            dst: r2,
            sym,
            disp: 0,
        });
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(eliminate_common_subexpressions(&mut f));
        assert!(f.insts().any(|i| matches!(
            &i.kind,
            InstKind::Assign { dst, src: RExpr::Op(Operand::Reg(r)) } if *dst == r2 && *r == r1
        )));
    }

    #[test]
    fn fifo_expressions_are_not_merged() {
        let mut b = FuncBuilder::new("f", 0, 0);
        let a = b.bin(BinOp::FAdd, Reg::flt(0).into(), Operand::FImm(1.0));
        let c = b.bin(BinOp::FAdd, Reg::flt(0).into(), Operand::FImm(1.0));
        let _ = (a, c);
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(!eliminate_common_subexpressions(&mut f));
    }
}
