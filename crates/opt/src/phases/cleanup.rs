//! Control-flow cleanup: jump threading, branch simplification and
//! straight-line block merging. Keeps listings close to the paper's shape.

use std::collections::HashMap;

use wm_ir::{Function, InstKind, Label};

/// Simplify the CFG to a fixed point:
///
/// * retarget jumps through empty jump-only blocks (jump threading),
/// * turn branches whose arms agree into unconditional jumps (removing the
///   adjacent compare so the condition-code FIFO stays balanced),
/// * merge a block into its unique jump predecessor,
/// * drop unreachable blocks.
pub fn simplify_cfg(func: &mut Function) -> bool {
    let mut any = false;
    loop {
        let mut changed = false;
        changed |= thread_jumps(func);
        changed |= collapse_trivial_branches(func);
        changed |= merge_straight_line(func);
        if changed {
            func.compact();
            any = true;
        } else {
            break;
        }
    }
    any
}

/// If block `L` contains only `Jump M`, retarget every edge into `L` to `M`.
fn thread_jumps(func: &mut Function) -> bool {
    // label -> forwarding target
    let mut forward: HashMap<Label, Label> = HashMap::new();
    for block in &func.blocks {
        if block.insts.len() == 1 {
            if let InstKind::Jump { target } = block.insts[0].kind {
                if target != block.label {
                    forward.insert(block.label, target);
                }
            }
        }
    }
    if forward.is_empty() {
        return false;
    }
    let resolve = |mut l: Label| {
        // follow chains with a bound to survive cycles
        for _ in 0..forward.len() {
            match forward.get(&l) {
                Some(&next) => l = next,
                None => break,
            }
        }
        l
    };
    let mut changed = false;
    let entry = func.entry_label();
    for block in &mut func.blocks {
        // don't rewrite the entry block's own self identity
        let _ = entry;
        if let Some(last) = block.insts.last_mut() {
            for t in last.kind.targets_mut() {
                let r = resolve(*t);
                if r != *t {
                    *t = r;
                    changed = true;
                }
            }
        }
    }
    changed
}

/// `Branch` with identical arms becomes `Jump`; the compare feeding it is
/// removed when adjacent (to keep the CC FIFO balanced).
fn collapse_trivial_branches(func: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut func.blocks {
        let n = block.insts.len();
        if n == 0 {
            continue;
        }
        if let InstKind::Branch {
            target, els, class, ..
        } = block.insts[n - 1].kind
        {
            if target == els {
                // only safe if we can also delete the adjacent compare
                if n >= 2 {
                    if let InstKind::Compare { class: c2, .. } = block.insts[n - 2].kind {
                        if c2 == class {
                            block.insts[n - 2].kind = InstKind::Nop;
                            block.insts[n - 1].kind = InstKind::Jump { target };
                            changed = true;
                        }
                    }
                }
            }
        }
    }
    changed
}

/// Merge `B` into `A` when `A` ends with `Jump B` and `B` has no other
/// predecessors (and is not the entry block).
fn merge_straight_line(func: &mut Function) -> bool {
    let preds = func.predecessors();
    let mut changed = false;
    for ai in 0..func.blocks.len() {
        let Some(last) = func.blocks[ai].insts.last() else {
            continue;
        };
        let InstKind::Jump { target } = last.kind else {
            continue;
        };
        let bi = func.block_index(target);
        if bi == 0 || bi == ai || preds[bi].len() != 1 {
            continue;
        }
        // move B's instructions into A
        let mut moved = std::mem::take(&mut func.blocks[bi].insts);
        let a = &mut func.blocks[ai].insts;
        a.pop(); // the jump
        a.append(&mut moved);
        changed = true;
        break; // indices now stale; caller loops to a fixed point
    }
    if changed {
        func.compact();
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_ir::{CmpOp, FuncBuilder, Operand, RegClass};

    #[test]
    fn threads_jump_chains() {
        let mut b = FuncBuilder::new("f", 0, 0);
        let mid = b.new_block();
        let end = b.new_block();
        b.jump(mid);
        b.switch_to(mid);
        b.jump(end);
        b.switch_to(end);
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(simplify_cfg(&mut f));
        assert_eq!(f.blocks.len(), 1, "all straight-line code merged");
        assert!(matches!(
            f.blocks[0].insts.last().unwrap().kind,
            InstKind::Ret
        ));
    }

    #[test]
    fn collapses_same_target_branch_and_its_compare() {
        let mut b = FuncBuilder::new("f", 1, 0);
        let n = b.func().params[0];
        let t = b.new_block();
        b.branch_if(RegClass::Int, CmpOp::Lt, n.into(), Operand::Imm(0), t, t);
        b.switch_to(t);
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(simplify_cfg(&mut f));
        assert!(
            !f.insts()
                .any(|i| matches!(i.kind, InstKind::Compare { .. })),
            "compare must go with the branch"
        );
        assert!(!f.insts().any(|i| matches!(i.kind, InstKind::Branch { .. })));
    }

    #[test]
    fn keeps_loops_intact() {
        let mut b = FuncBuilder::new("f", 1, 0);
        let n = b.func().params[0];
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(body);
        b.switch_to(body);
        b.branch_if(
            RegClass::Int,
            CmpOp::Lt,
            Operand::Imm(0),
            n.into(),
            body,
            exit,
        );
        b.switch_to(exit);
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        simplify_cfg(&mut f);
        // the loop structure (self branch) must survive
        let dom = crate::cfg::Dominators::compute(&f);
        let loops = crate::cfg::natural_loops(&f, &dom);
        assert_eq!(loops.len(), 1);
    }
}
