//! Dead-code elimination based on live-register analysis.

use wm_ir::{Function, InstKind};

use crate::liveness::{defs_of, uses_of, Liveness};

/// Remove pure instructions whose results are dead. Instructions with side
/// effects (memory, control flow, FIFO traffic, condition codes, calls) are
/// always kept. Runs to a fixed point.
pub fn eliminate_dead_code(func: &mut Function) -> bool {
    let mut any = false;
    loop {
        let lv = Liveness::compute(func);
        let mut changed = false;
        for bi in 0..func.blocks.len() {
            let after = lv.live_after(func, bi);
            for (ii, live) in after.iter().enumerate() {
                let inst = &func.blocks[bi].insts[ii];
                if inst.kind == InstKind::Nop || inst.kind.has_side_effects() {
                    continue;
                }
                let defs = defs_of(&inst.kind);
                if defs.is_empty() {
                    continue; // e.g. already Nop or a terminator
                }
                if defs.iter().all(|d| !live.contains(d)) {
                    func.blocks[bi].insts[ii].kind = InstKind::Nop;
                    changed = true;
                }
            }
        }
        if changed {
            any = true;
            func.compact();
        } else {
            break;
        }
    }
    any
}

/// Remove a *matched pair* of WM load and FIFO dequeue whose dequeued value
/// is dead. Plain DCE cannot do this: the dequeue has a FIFO side effect
/// that is only safe to drop together with the load that feeds it. The pair
/// must be adjacent (the form target expansion produces).
pub fn eliminate_dead_load_pairs(func: &mut Function) -> bool {
    let mut changed = false;
    let lv = Liveness::compute(func);
    for bi in 0..func.blocks.len() {
        let after = lv.live_after(func, bi);
        let insts = &mut func.blocks[bi].insts;
        for ii in 0..insts.len().saturating_sub(1) {
            let InstKind::WLoad { fifo, .. } = insts[ii].kind else {
                continue;
            };
            let next = &insts[ii + 1].kind;
            let InstKind::Assign { dst, src } = next else {
                continue;
            };
            // exactly `dst := fifo` with a dead dst
            if *src == wm_ir::RExpr::Op(wm_ir::Operand::Reg(fifo.reg()))
                && !dst.is_fifo()
                && !after[ii + 1].contains(dst)
            {
                insts[ii].kind = InstKind::Nop;
                insts[ii + 1].kind = InstKind::Nop;
                changed = true;
            }
        }
    }
    if changed {
        func.compact();
    }
    // uses_of is pulled in for symmetry with the liveness API
    let _ = uses_of;
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_ir::{BinOp, DataFifo, FuncBuilder, Operand, RExpr, Reg, RegClass, Width};

    #[test]
    fn removes_dead_chain() {
        let mut b = FuncBuilder::new("f", 1, 0);
        let x = b.func().params[0];
        let t = b.bin(BinOp::Add, x.into(), Operand::Imm(1));
        let u = b.bin(BinOp::Mul, t.into(), Operand::Imm(2));
        let _ = u; // dead: nothing uses u
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(eliminate_dead_code(&mut f));
        assert_eq!(f.inst_count(), 1, "only Ret remains");
    }

    #[test]
    fn keeps_live_values_and_side_effects() {
        let mut b = FuncBuilder::new("f", 1, 0);
        let x = b.func().params[0];
        let r = b.vreg(RegClass::Int);
        b.func_mut().ret = Some(r);
        b.assign(r, RExpr::Bin(BinOp::Add, x.into(), Operand::Imm(1)));
        // a store: side effect, must stay
        b.emit(InstKind::GStore {
            src: Operand::Imm(0),
            mem: wm_ir::MemRef::base(x, 0, Width::W4),
        });
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(!eliminate_dead_code(&mut f));
        assert_eq!(f.inst_count(), 3);
    }

    #[test]
    fn self_increment_with_no_other_use_survives_plain_dce() {
        // i := i + 1 in a loop keeps itself alive around the back edge;
        // plain DCE must not remove it (the streaming pass handles the
        // paper's step j explicitly).
        let mut b = FuncBuilder::new("f", 0, 0);
        let i = b.vreg(RegClass::Int);
        b.copy(i, Operand::Imm(0));
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(body);
        b.switch_to(body);
        b.assign(i, RExpr::Bin(BinOp::Add, i.into(), Operand::Imm(1)));
        b.branch_if(
            RegClass::Int,
            wm_ir::CmpOp::Lt,
            i.into(),
            Operand::Imm(10),
            body,
            exit,
        );
        b.switch_to(exit);
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(!eliminate_dead_code(&mut f));
    }

    #[test]
    fn dead_wm_load_pair_is_removed_together() {
        let mut b = FuncBuilder::new("f", 1, 0);
        let x = b.func().params[0];
        let v = b.vreg(RegClass::Flt);
        let fifo = DataFifo::new(RegClass::Flt, 0);
        b.emit(InstKind::WLoad {
            fifo,
            addr: RExpr::Op(x.into()),
            width: Width::D8,
        });
        b.copy(v, Reg::flt(0).into()); // dequeue, v dead
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        // plain DCE leaves both (FIFO side effects)
        assert!(!eliminate_dead_code(&mut f));
        assert!(eliminate_dead_load_pairs(&mut f));
        assert_eq!(f.inst_count(), 1);
    }
}
