//! Loop-invariant code motion.
//!
//! The paper notes that "loop detection and code motion must be performed
//! first" before the recurrence algorithm; hoisting address formation
//! (`llh`/`sll` pairs, here `LoadAddr`) out of loops is what produces the
//! Figure 4 shape with array base addresses set up ahead of the loop.

use std::collections::{HashMap, HashSet};

use wm_ir::{BinOp, Function, Inst, InstKind, RExpr, Reg};

use crate::cfg::{ensure_preheader, natural_loops, Dominators};

/// Hoist loop-invariant pure instructions into loop preheaders.
///
/// An instruction is hoisted when it is a pure `Assign`/`LoadAddr`, its
/// destination is a virtual register with a single definition in the whole
/// function, every register operand is defined outside the loop (or is
/// itself hoisted), and speculation is safe (no division). Single-definition
/// virtual registers make the transformation sound without a full
/// reaching-definition analysis.
pub fn hoist_invariants(func: &mut Function) -> bool {
    let mut any = false;
    // Re-discover loops after each round of motion (preheader insertion
    // invalidates indices).
    loop {
        let dom = Dominators::compute(func);
        let loops = natural_loops(func, &dom);
        let mut moved = false;
        for lp in &loops {
            // count definitions per register
            let mut def_count: HashMap<Reg, usize> = HashMap::new();
            for block in &func.blocks {
                for inst in &block.insts {
                    for d in inst.kind.defs() {
                        *def_count.entry(d).or_default() += 1;
                    }
                }
            }
            let mut invariant: HashSet<Reg> = HashSet::new();
            let mut to_hoist: Vec<(usize, usize)> = Vec::new();
            // iterate to fixpoint within the loop
            let mut grew = true;
            while grew {
                grew = false;
                for &bi in &lp.blocks {
                    for (ii, inst) in func.blocks[bi].insts.iter().enumerate() {
                        if to_hoist.contains(&(bi, ii)) {
                            continue;
                        }
                        if let Some(dst) = hoistable(inst, func, lp, &def_count, &invariant) {
                            to_hoist.push((bi, ii));
                            invariant.insert(dst);
                            grew = true;
                        }
                    }
                }
            }
            if to_hoist.is_empty() {
                continue;
            }
            let pre = ensure_preheader(func, lp);
            // Move in original program order so dependencies stay ordered.
            to_hoist.sort();
            let mut moved_insts: Vec<Inst> = Vec::new();
            for &(bi, ii) in &to_hoist {
                let inst = func.blocks[bi].insts[ii].clone();
                func.blocks[bi].insts[ii].kind = InstKind::Nop;
                moved_insts.push(inst);
            }
            // Insert before the preheader's terminating jump.
            let pre_block = func.block_mut(pre);
            let at = pre_block.insts.len() - 1;
            for (k, inst) in moved_insts.into_iter().enumerate() {
                pre_block.insts.insert(at + k, inst);
            }
            func.compact();
            moved = true;
            any = true;
            break; // CFG changed; restart loop discovery
        }
        if !moved {
            break;
        }
    }
    any
}

fn hoistable(
    inst: &Inst,
    func: &Function,
    lp: &crate::cfg::Loop,
    def_count: &HashMap<Reg, usize>,
    invariant: &HashSet<Reg>,
) -> Option<Reg> {
    let dst = match &inst.kind {
        InstKind::LoadAddr { dst, .. } => *dst,
        InstKind::Assign { dst, src } => {
            // no FIFO traffic, no trapping ops
            if dst.is_fifo() || src.regs().any(|r| r.is_fifo()) {
                return None;
            }
            let traps = match src {
                RExpr::Bin(op, ..) => matches!(op, BinOp::Div | BinOp::Rem | BinOp::FDiv),
                RExpr::Dual { inner, outer, .. } => {
                    matches!(inner, BinOp::Div | BinOp::Rem | BinOp::FDiv)
                        || matches!(outer, BinOp::Div | BinOp::Rem | BinOp::FDiv)
                }
                _ => false,
            };
            if traps {
                return None;
            }
            *dst
        }
        _ => return None,
    };
    if !dst.is_virt() || def_count.get(&dst) != Some(&1) {
        return None;
    }
    // all operands invariant: defined outside the loop or hoisted already
    let ok = inst.kind.uses().into_iter().all(|u| {
        if invariant.contains(&u) || u == Reg::sp() {
            return true;
        }
        !reg_defined_in_loop(func, lp, u)
    });
    ok.then_some(dst)
}

fn reg_defined_in_loop(func: &Function, lp: &crate::cfg::Loop, r: Reg) -> bool {
    lp.blocks.iter().any(|&bi| {
        func.blocks[bi]
            .insts
            .iter()
            .any(|i| i.kind.defs().contains(&r))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_ir::{CmpOp, FuncBuilder, Operand, RegClass, SymId};

    #[test]
    fn hoists_loadaddr_out_of_loop() {
        // for(i=0;i<n;i++){ a = &sym; } — LoadAddr must move to a preheader
        let mut b = FuncBuilder::new("f", 1, 0);
        let n = b.func().params[0];
        let i = b.vreg(RegClass::Int);
        b.copy(i, Operand::Imm(0));
        let body = b.new_block();
        let exit = b.new_block();
        b.branch_if(RegClass::Int, CmpOp::Lt, i.into(), n.into(), body, exit);
        b.switch_to(body);
        let a = b.vreg(RegClass::Int);
        b.emit(InstKind::LoadAddr {
            dst: a,
            sym: SymId(0),
            disp: 0,
        });
        // keep `a` observable so DCE-style reasoning isn't involved
        b.emit(InstKind::GStore {
            src: a.into(),
            mem: wm_ir::MemRef::base(a, 0, wm_ir::Width::W4),
        });
        b.assign(i, RExpr::Bin(BinOp::Add, i.into(), Operand::Imm(1)));
        b.branch_if(RegClass::Int, CmpOp::Lt, i.into(), n.into(), body, exit);
        b.switch_to(exit);
        b.emit(InstKind::Ret);
        let mut f = b.finish();

        assert!(hoist_invariants(&mut f));
        let dom = Dominators::compute(&f);
        let loops = natural_loops(&f, &dom);
        assert_eq!(loops.len(), 1);
        // LoadAddr no longer inside the loop
        for &bi in &loops[0].blocks {
            assert!(!f.blocks[bi]
                .insts
                .iter()
                .any(|i| matches!(i.kind, InstKind::LoadAddr { .. })));
        }
        // but still present in the function
        assert!(f
            .insts()
            .any(|i| matches!(i.kind, InstKind::LoadAddr { .. })));
    }

    #[test]
    fn variant_computations_stay() {
        let mut b = FuncBuilder::new("f", 1, 0);
        let n = b.func().params[0];
        let i = b.vreg(RegClass::Int);
        b.copy(i, Operand::Imm(0));
        let body = b.new_block();
        let exit = b.new_block();
        b.branch_if(RegClass::Int, CmpOp::Lt, i.into(), n.into(), body, exit);
        b.switch_to(body);
        let t = b.vreg(RegClass::Int);
        b.assign(t, RExpr::Bin(BinOp::Shl, i.into(), Operand::Imm(3)));
        b.emit(InstKind::GStore {
            src: t.into(),
            mem: wm_ir::MemRef::base(t, 0, wm_ir::Width::W4),
        });
        b.assign(i, RExpr::Bin(BinOp::Add, i.into(), Operand::Imm(1)));
        b.branch_if(RegClass::Int, CmpOp::Lt, i.into(), n.into(), body, exit);
        b.switch_to(exit);
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(!hoist_invariants(&mut f), "i<<3 depends on the IV");
    }

    #[test]
    fn division_is_not_speculated() {
        let mut b = FuncBuilder::new("f", 2, 0);
        let n = b.func().params[0];
        let d = b.func().params[1];
        let i = b.vreg(RegClass::Int);
        b.copy(i, Operand::Imm(0));
        let body = b.new_block();
        let exit = b.new_block();
        b.branch_if(RegClass::Int, CmpOp::Lt, i.into(), n.into(), body, exit);
        b.switch_to(body);
        let q = b.vreg(RegClass::Int);
        // 100 / d is invariant but may trap when the loop never runs
        b.assign(q, RExpr::Bin(BinOp::Div, Operand::Imm(100), d.into()));
        b.emit(InstKind::GStore {
            src: q.into(),
            mem: wm_ir::MemRef::base(n, 0, wm_ir::Width::W4),
        });
        b.assign(i, RExpr::Bin(BinOp::Add, i.into(), Operand::Imm(1)));
        b.branch_if(RegClass::Int, CmpOp::Lt, i.into(), n.into(), body, exit);
        b.switch_to(exit);
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(!hoist_invariants(&mut f));
    }
}
