//! Copy propagation.
//!
//! The paper relies on this phase to clean up after the recurrence
//! transformation: "the copy propagate optimization phase would delete the
//! register-to-register copy at line 10 replacing the use of register f23
//! at line 15 with register f22". Deletion of the then-dead copy is left to
//! dead-code elimination.

use std::collections::HashMap;

use wm_ir::{Function, InstKind, Operand, RExpr, Reg};

/// Block-local copy propagation: after `dst := src` (a plain register copy
/// or constant), uses of `dst` are replaced by `src` until either register
/// is redefined. FIFO-mapped registers are never involved: reading one has
/// queue side effects.
pub fn propagate_copies(func: &mut Function) -> bool {
    // Definition counts decide the *direction* of propagation for
    // register-to-register copies: after `k := t` where `t` is a
    // single-definition temporary and `k` a multiply-defined variable,
    // later uses of `t` are rewritten to `k` (reverse mode). This
    // canonicalizes induction-variable updates lowered as
    // `t := (k) + s ; k := t ; … t …` back into a recognizable form.
    let mut def_count: HashMap<Reg, usize> = HashMap::new();
    for inst in func.insts() {
        for d in inst.kind.defs() {
            *def_count.entry(d).or_default() += 1;
        }
    }
    let mut changed = false;
    for block in &mut func.blocks {
        // dst -> replacement operand
        let mut avail: HashMap<Reg, Operand> = HashMap::new();
        for inst in &mut block.insts {
            // substitute uses first
            let uses = inst.kind.uses();
            for u in uses {
                if let Some(&rep) = avail.get(&u) {
                    inst.kind.substitute_use(u, rep);
                    changed = true;
                }
            }
            // calls clobber nothing statically here, but any def kills
            // mappings of and through the defined registers
            let defs = inst.kind.defs();
            for d in &defs {
                avail.remove(d);
                avail.retain(|_, v| *v != Operand::Reg(*d));
            }
            // record new copies
            if let InstKind::Assign { dst, src } = &inst.kind {
                if !dst.is_fifo() && !dst.is_zero() {
                    match src {
                        RExpr::Op(op @ (Operand::Imm(_) | Operand::FImm(_))) => {
                            avail.insert(*dst, *op);
                        }
                        RExpr::Op(Operand::Reg(s)) if !s.is_fifo() && !s.is_zero() && s != dst => {
                            let reverse = s.is_virt()
                                && def_count.get(s).copied().unwrap_or(0) == 1
                                && def_count.get(dst).copied().unwrap_or(0) > 1;
                            if reverse {
                                // uses of the temp become uses of the variable
                                avail.insert(*s, Operand::Reg(*dst));
                            } else {
                                avail.insert(*dst, Operand::Reg(*s));
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    changed
}

/// Coalesce the `t := expr ; r := t` pattern (with `t` used nowhere else)
/// into `r := expr`. The front end produces this shape for `i = i + 1` and
/// `i += 1`, and coalescing it restores the `r := (r) + c` form the
/// induction-variable analysis recognizes.
pub fn coalesce_copy_chains(func: &mut Function) -> bool {
    // count uses of each register
    let mut use_count: HashMap<Reg, usize> = HashMap::new();
    for inst in func.insts() {
        for u in inst.kind.uses() {
            *use_count.entry(u).or_default() += 1;
        }
    }
    if let Some(r) = func.ret {
        *use_count.entry(r).or_default() += 1;
    }
    let mut changed = false;
    for block in &mut func.blocks {
        for k in 0..block.insts.len().saturating_sub(1) {
            let InstKind::Assign { dst: t, src: expr } = &block.insts[k].kind else {
                continue;
            };
            let (t, expr) = (*t, expr.clone());
            if !t.is_virt() || use_count.get(&t).copied().unwrap_or(0) != 1 {
                continue;
            }
            if expr.regs().any(|r| r.is_fifo()) {
                continue; // dequeue forwarding is the combiner's job
            }
            let InstKind::Assign {
                dst: r,
                src: RExpr::Op(Operand::Reg(s)),
            } = &block.insts[k + 1].kind
            else {
                continue;
            };
            if *s != t || r.is_fifo() || r.is_zero() {
                continue;
            }
            let r = *r;
            block.insts[k + 1].kind = InstKind::Assign { dst: r, src: expr };
            block.insts[k].kind = InstKind::Nop;
            changed = true;
        }
    }
    if changed {
        func.compact();
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_ir::{BinOp, FuncBuilder, RegClass};

    #[test]
    fn propagates_register_copies_within_block() {
        let mut b = FuncBuilder::new("f", 1, 0);
        let x = b.func().params[0];
        let t = b.vreg(RegClass::Int);
        b.copy(t, x.into());
        let u = b.bin(BinOp::Add, t.into(), Operand::Imm(1));
        let _ = u;
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(propagate_copies(&mut f));
        let add = f
            .insts()
            .find_map(|i| match &i.kind {
                InstKind::Assign {
                    src: RExpr::Bin(BinOp::Add, a, _),
                    ..
                } => Some(*a),
                _ => None,
            })
            .unwrap();
        assert_eq!(add, Operand::Reg(x));
    }

    #[test]
    fn redefinition_kills_the_copy() {
        let mut b = FuncBuilder::new("f", 2, 0);
        let x = b.func().params[0];
        let y = b.func().params[1];
        let t = b.vreg(RegClass::Int);
        b.copy(t, x.into());
        // x redefined: t no longer equals x
        b.copy(x, y.into());
        let u = b.bin(BinOp::Add, t.into(), Operand::Imm(1));
        let _ = u;
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        propagate_copies(&mut f);
        let add = f
            .insts()
            .find_map(|i| match &i.kind {
                InstKind::Assign {
                    src: RExpr::Bin(BinOp::Add, a, _),
                    ..
                } => Some(*a),
                _ => None,
            })
            .unwrap();
        assert_eq!(add, Operand::Reg(t), "t must not be replaced by stale x");
    }

    #[test]
    fn fifo_reads_are_not_copies() {
        let mut b = FuncBuilder::new("f", 0, 0);
        let t = b.vreg(RegClass::Flt);
        // t := f0 dequeues — not a propagatable copy
        b.copy(t, Reg::flt(0).into());
        let u = b.bin(BinOp::FAdd, t.into(), t.into());
        let _ = u;
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        propagate_copies(&mut f);
        let still_t = f.insts().any(|i| {
            matches!(&i.kind, InstKind::Assign { src: RExpr::Bin(BinOp::FAdd, a, b), .. }
                if *a == Operand::Reg(t) && *b == Operand::Reg(t))
        });
        assert!(still_t, "f0 must not be duplicated into the use");
    }

    #[test]
    fn constants_propagate() {
        let mut b = FuncBuilder::new("f", 0, 0);
        let t = b.vreg(RegClass::Int);
        b.copy(t, Operand::Imm(5));
        let u = b.bin(BinOp::Mul, t.into(), t.into());
        let _ = u;
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(propagate_copies(&mut f));
        assert!(f.insts().any(|i| matches!(
            &i.kind,
            InstKind::Assign {
                src: RExpr::Bin(BinOp::Mul, Operand::Imm(5), Operand::Imm(5)),
                ..
            }
        )));
    }
}
