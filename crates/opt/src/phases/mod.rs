//! Classical optimization phases.
//!
//! Each phase is a function `fn(&mut Function) -> bool` returning whether it
//! changed anything, so the pipeline can re-invoke phases until a fixed
//! point — the paper's third strategy ("optimization phases to be reinvoked
//! at any time").

mod cleanup;
mod combine;
mod constfold;
mod copyprop;
mod cse;
mod dce;
mod licm;

pub use cleanup::simplify_cfg;
pub use combine::combine_duals;
pub use constfold::{fold_constant_branches, fold_constants, propagate_single_def_constants};
pub use copyprop::{coalesce_copy_chains, propagate_copies};
pub use cse::eliminate_common_subexpressions;
pub use dce::{eliminate_dead_code, eliminate_dead_load_pairs};
pub use licm::hoist_invariants;
