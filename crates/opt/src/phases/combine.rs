//! Instruction combining for the WM dual-operation form.
//!
//! "Most instructions encode two operations in a single 32-bit word …
//! `R0 := (R1 op1 R2) op2 R3`. … this simple feature subsumes many of the
//! specialized addressing modes and special operations found on many
//! existing machines", e.g. scaled addressing (`shift` + `add`) and
//! multiply-add. This phase merges a single-use binary definition into its
//! consumer, producing dual RTLs; it also forwards single-use FIFO dequeues
//! (`t := f0`) directly into the consuming expression, which is how the
//! paper's listings come to read `f4 := (f0*f1)+f4`.

use std::collections::HashMap;

use wm_ir::{Function, InstKind, Operand, RExpr, Reg};

use crate::liveness::uses_of;

/// Run one combining sweep. Returns true if anything was merged.
pub fn combine_duals(func: &mut Function) -> bool {
    // Count uses of every register (including the implicit Ret use).
    let mut use_sites: HashMap<Reg, Vec<(usize, usize)>> = HashMap::new();
    for (bi, block) in func.blocks.iter().enumerate() {
        for (ii, inst) in block.insts.iter().enumerate() {
            for u in uses_of(&inst.kind, func) {
                use_sites.entry(u).or_default().push((bi, ii));
            }
        }
    }
    let mut changed = false;
    for bi in 0..func.blocks.len() {
        for ii in 0..func.blocks[bi].insts.len() {
            let def = func.blocks[bi].insts[ii].kind.clone();
            let InstKind::Assign { dst: t, src } = &def else {
                continue;
            };
            if !t.is_virt() {
                continue;
            }
            // candidate source expressions: a single binary op, or a plain
            // FIFO dequeue
            let is_bin = matches!(src, RExpr::Bin(..) | RExpr::Dual { .. });
            let is_deq = matches!(src, RExpr::Op(Operand::Reg(r)) if r.is_fifo());
            if !is_bin && !is_deq {
                continue;
            }
            let Some(sites) = use_sites.get(t) else {
                continue;
            };
            if sites.len() != 1 {
                continue;
            }
            let (ubi, uii) = sites[0];
            if ubi != bi || uii <= ii {
                continue;
            }
            let reads_fifo = src.regs().any(|r| r.is_fifo());
            if reads_fifo && uii != ii + 1 {
                continue; // moving a dequeue past other code is unsafe
            }
            // no operand of the def may be redefined between def and use
            let operands: Vec<Reg> = src.regs().filter(|r| !r.is_fifo()).collect();
            let mut blocked = false;
            for mid in ii + 1..uii {
                let defs = func.blocks[bi].insts[mid].kind.defs();
                if defs.iter().any(|d| operands.contains(d) || d == t) {
                    blocked = true;
                    break;
                }
                // an intervening instruction reading the same FIFO would
                // change dequeue order
                if reads_fifo
                    && uses_of(&func.blocks[bi].insts[mid].kind, func)
                        .iter()
                        .any(|r| r.is_fifo())
                {
                    blocked = true;
                    break;
                }
            }
            if blocked {
                continue;
            }
            // try to rewrite the consumer
            let consumer = func.blocks[bi].insts[uii].kind.clone();
            if let Some(new_kind) = merge_into(&consumer, *t, src) {
                func.blocks[bi].insts[uii].kind = new_kind;
                func.blocks[bi].insts[ii].kind = InstKind::Nop;
                // The merged value's operand registers now have an extra
                // use site; conservatively stop combining them this sweep.
                for r in operands {
                    use_sites.entry(r).or_default().push((bi, uii));
                }
                use_sites.remove(t);
                changed = true;
            }
        }
    }
    if changed {
        func.compact();
    }
    changed
}

/// Substitute definition `t := def_src` into `consumer`, producing a dual
/// RTL when legal.
fn merge_into(consumer: &InstKind, t: Reg, def_src: &RExpr) -> Option<InstKind> {
    match consumer {
        InstKind::Assign { dst, src } => {
            let merged = merge_expr(src, t, def_src)?;
            Some(InstKind::Assign {
                dst: *dst,
                src: merged,
            })
        }
        InstKind::WLoad { fifo, addr, width } => {
            let merged = merge_expr(addr, t, def_src)?;
            Some(InstKind::WLoad {
                fifo: *fifo,
                addr: merged,
                width: *width,
            })
        }
        InstKind::WStore { unit, addr, width } => {
            let merged = merge_expr(addr, t, def_src)?;
            Some(InstKind::WStore {
                unit: *unit,
                addr: merged,
                width: *width,
            })
        }
        _ => None,
    }
}

fn merge_expr(consumer: &RExpr, t: Reg, def_src: &RExpr) -> Option<RExpr> {
    let t_op = Operand::Reg(t);
    match def_src {
        // forward a FIFO dequeue: replace t by the FIFO register
        RExpr::Op(fifo_op @ Operand::Reg(fr)) if fr.is_fifo() => {
            let mut out = consumer.clone();
            // count occurrences of t; exactly one may be replaced
            let occurrences = consumer.operands().filter(|o| *o == t_op).count();
            if occurrences != 1 {
                return None;
            }
            // dequeue-order safety: the substituted read must come before
            // any existing read of the same FIFO in operand order
            let ops: Vec<Operand> = consumer.operands().collect();
            let t_pos = ops.iter().position(|o| *o == t_op)?;
            for (i, o) in ops.iter().enumerate() {
                if let Operand::Reg(r) = o {
                    if r.is_fifo() && *r == *fr && i < t_pos {
                        return None;
                    }
                }
            }
            out.substitute(t, *fifo_op);
            Some(out)
        }
        // merge a binary op into a consumer binary op → dual op
        RExpr::Bin(op1, a, b) => match consumer {
            RExpr::Bin(op2, x, y) => {
                if *x == t_op && *y != t_op {
                    Some(RExpr::Dual {
                        inner: *op1,
                        a: *a,
                        b: *b,
                        outer: *op2,
                        c: *y,
                    })
                } else if *y == t_op && *x != t_op && op2.is_commutative() {
                    Some(RExpr::Dual {
                        inner: *op1,
                        a: *a,
                        b: *b,
                        outer: *op2,
                        c: *x,
                    })
                } else {
                    None
                }
            }
            // a bare copy of t: substitute the expression wholesale
            RExpr::Op(o) if *o == t_op => Some(RExpr::Bin(*op1, *a, *b)),
            _ => None,
        },
        // a dual definition can only move wholesale into a bare use
        RExpr::Dual { .. } => match consumer {
            RExpr::Op(o) if *o == t_op => Some(def_src.clone()),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_ir::{BinOp, DataFifo, FuncBuilder, RegClass, Width};

    #[test]
    fn scaled_address_becomes_dual() {
        // t := i << 3 ; u := t + base  →  u := (i<<3) + base
        let mut b = FuncBuilder::new("f", 2, 0);
        let i = b.func().params[0];
        let base = b.func().params[1];
        let t = b.bin(BinOp::Shl, i.into(), Operand::Imm(3));
        let u = b.bin(BinOp::Add, t.into(), base.into());
        b.func_mut().ret = Some(u);
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(combine_duals(&mut f));
        assert!(f.insts().any(|inst| matches!(
            &inst.kind,
            InstKind::Assign {
                src: RExpr::Dual {
                    inner: BinOp::Shl,
                    outer: BinOp::Add,
                    ..
                },
                ..
            }
        )));
        assert_eq!(f.inst_count(), 2, "shift folded away");
    }

    #[test]
    fn multiply_add_becomes_dual() {
        // s := (a*b) + s — the FMA shape of the dot-product loop
        let mut b = FuncBuilder::new("f", 0, 2);
        let x = b.func().params[0];
        let y = b.func().params[1];
        let s = b.vreg(RegClass::Flt);
        b.copy(s, Operand::FImm(0.0));
        let t = b.bin(BinOp::FMul, x.into(), y.into());
        let s2 = b.vreg(RegClass::Flt);
        b.assign(s2, RExpr::Bin(BinOp::FAdd, t.into(), s.into()));
        b.func_mut().ret = Some(s2);
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(combine_duals(&mut f));
        assert!(f.insts().any(|inst| matches!(
            &inst.kind,
            InstKind::Assign {
                src: RExpr::Dual {
                    inner: BinOp::FMul,
                    outer: BinOp::FAdd,
                    ..
                },
                ..
            }
        )));
    }

    #[test]
    fn fifo_dequeue_forwards_into_consumer() {
        // t := f0 ; u := t - h  →  u := (f0) - h
        let mut b = FuncBuilder::new("f", 0, 1);
        let h = b.func().params[0];
        let t = b.vreg(RegClass::Flt);
        b.copy(t, Reg::flt(0).into());
        let u = b.bin(BinOp::FSub, t.into(), h.into());
        b.func_mut().ret = Some(u);
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(combine_duals(&mut f));
        assert!(f.insts().any(|inst| matches!(
            &inst.kind,
            InstKind::Assign { src: RExpr::Bin(BinOp::FSub, Operand::Reg(r), _), .. }
            if r.is_fifo()
        )));
    }

    #[test]
    fn fifo_order_violation_is_rejected() {
        // t := f0 ; u := f0 - t would swap dequeue order: must not combine
        let mut b = FuncBuilder::new("f", 0, 0);
        let t = b.vreg(RegClass::Flt);
        b.copy(t, Reg::flt(0).into());
        let u = b.vreg(RegClass::Flt);
        b.assign(u, RExpr::Bin(BinOp::FSub, Reg::flt(0).into(), t.into()));
        b.func_mut().ret = Some(u);
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(!combine_duals(&mut f));
    }

    #[test]
    fn multi_use_values_are_not_merged() {
        let mut b = FuncBuilder::new("f", 2, 0);
        let x = b.func().params[0];
        let y = b.func().params[1];
        let t = b.bin(BinOp::Add, x.into(), y.into());
        let _u = b.bin(BinOp::Add, t.into(), Operand::Imm(1));
        let v = b.bin(BinOp::Add, t.into(), Operand::Imm(2));
        b.func_mut().ret = Some(v);
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        assert!(!combine_duals(&mut f));
    }

    #[test]
    fn combines_into_wm_address_expressions() {
        let mut b = FuncBuilder::new("f", 2, 0);
        let i = b.func().params[0];
        let base = b.func().params[1];
        let t = b.bin(BinOp::Shl, i.into(), Operand::Imm(3));
        let u = b.bin(BinOp::Add, t.into(), base.into());
        b.emit(InstKind::WLoad {
            fifo: DataFifo::new(RegClass::Flt, 0),
            addr: RExpr::Op(u.into()),
            width: Width::D8,
        });
        let v = b.vreg(RegClass::Flt);
        b.copy(v, Reg::flt(0).into());
        b.emit(InstKind::GStore {
            src: v.into(),
            mem: wm_ir::MemRef::base(base, 0, Width::D8),
        });
        b.emit(InstKind::Ret);
        let mut f = b.finish();
        // first sweep: t folds into u; second: u folds into the load address
        assert!(combine_duals(&mut f));
        combine_duals(&mut f);
        let addr = f
            .insts()
            .find_map(|inst| match &inst.kind {
                InstKind::WLoad { addr, .. } => Some(addr.clone()),
                _ => None,
            })
            .unwrap();
        assert!(
            matches!(
                addr,
                RExpr::Dual {
                    inner: BinOp::Shl,
                    outer: BinOp::Add,
                    ..
                }
            ),
            "{addr:?}"
        );
    }
}
