//! The RTL optimizer.
//!
//! The compiler of the paper performs "all optimizations … on object code
//! (RTLs)" and "uses the same representation for all phases of optimization",
//! so that optimization phases can be "reinvoked at any time". This crate
//! follows that structure: every phase is a function from a
//! [`wm_ir::Function`] to a changed/unchanged flag, and the drivers in
//! [`pipeline`] re-invoke phases until a fixed point.
//!
//! Two phases are the paper's contribution and the heart of this crate:
//!
//! * [`recurrence::optimize_recurrences`] — the *Recurrence Detection and
//!   Optimization Algorithm* (Steps 1–4 of the paper), which partitions the
//!   memory references of each innermost loop, finds read/write pairs that
//!   fetch a value stored on a previous iteration, and replaces the loads
//!   with register copies (Figure 4 → Figure 5);
//! * [`streaming::optimize_streams`] — the *Streaming Optimization
//!   Algorithm* (Steps 1–3), which converts regular loop accesses into WM
//!   stream instructions serviced by the stream control units
//!   (Figure 5 → Figure 7).
//!
//! A third phase rides on top of those two: [`modulo::modulo_schedule`]
//! (`-O modulo`) software-pipelines the streamed inner loops at a provably
//! minimal initiation interval, using the in-tree `wm-solver`
//! difference-logic SMT solver to decide feasibility of each candidate
//! interval.
//!
//! Supporting analyses: dominators and natural loops ([`mod@cfg`]), live
//! registers ([`liveness`]), induction variables and affine address forms
//! ([`affine`]), and the memory-reference partitions of the paper
//! ([`partition`]).

pub mod affine;
pub mod cfg;
pub mod liveness;
pub mod modulo;
pub mod partition;
pub mod phases;
pub mod pipeline;
pub mod recurrence;
pub mod streaming;
pub mod tile;
pub mod vectorize;

pub use modulo::{LoopReport, ModuloReport};
pub use partition::{AliasModel, MemPartition, PartitionSet, RefInfo};
pub use pipeline::{optimize_generic, optimize_wm, optimize_wm_with, OptOptions, OptStats};
pub use recurrence::RecurrenceReport;
pub use streaming::{GlobalExtents, StreamingReport};
pub use tile::{partition_tiles, TileReport};
pub use vectorize::VectorReport;
