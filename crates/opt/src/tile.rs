//! Loop partitioning across tiles — the compiler half of the tiled WM.
//!
//! The pass splits one loop of the entry function across `T` cooperating
//! cores under a **compute-replicate, kernel-partition** model:
//!
//! * everything *before* the chosen loop is replicated on every tile —
//!   the mini-C programs are deterministic and each tile owns a private
//!   copy of memory, so every tile reaches the loop with identical state;
//! * the loop's iteration space `[lo, hi)` is cut into `T` contiguous
//!   slices, one per tile, by rewriting the induction-variable init and
//!   the latch bound of each tile's clone;
//! * each region the loop stores to is written back to tile 0 over the
//!   inter-core channels (`Sin` + `Ssend` on the sender, a tested
//!   `Srecv` + `Sout` copy loop on tile 0), so tile 0's memory ends up
//!   exactly as the unpartitioned loop would have left it;
//! * loop-carried scalars (a recurrence the generic optimizer has already
//!   converted to a register carry) are forwarded tile-to-tile with the
//!   scalar channel ops, chaining the slices systolically;
//! * everything *after* the loop runs on tile 0 only, once the
//!   writebacks have been received.
//!
//! The pass is all-or-nothing: a loop qualifies only when the analysis
//! can prove the transformation exact (static bounds, stores affine in
//! the partitioned induction variable, no cross-slice memory dependence,
//! no carried scalar escaping into the sequel), and an unqualified
//! module is left untouched. Rejection is the common case and is not an
//! error — the program simply runs single-tile.

use std::collections::{BTreeMap, HashSet};

use wm_ir::{
    DataFifo, Function, Inst, InstKind, Label, Module, Operand, RExpr, Reg, RegClass, SymId, Width,
};

use crate::affine::{analyze_latch, Affine, LoopAnalysis, Region};
use crate::cfg::{natural_loops, Dominators, Loop};
use crate::liveness::Liveness;
use crate::streaming::trip_count_value;

/// What the partitioning pass did, for `--stats` and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileReport {
    /// Number of tiles the loop was split across.
    pub tiles: usize,
    /// Header label of the partitioned loop.
    pub header: Label,
    /// Iteration space `[lo, hi)` of the original loop.
    pub lo: i64,
    /// Exclusive upper bound of the iteration space.
    pub hi: i64,
    /// Store regions written back to tile 0 (one per distinct global).
    pub writebacks: usize,
    /// Loop-carried scalars chained tile-to-tile.
    pub carried: usize,
}

/// One contiguous store region `sym + coeff*i + off`, `i` in the loop's
/// iteration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct StoreRegion {
    sym: SymId,
    coeff: i64,
    off: i64,
    width: Width,
    class: RegClass,
}

/// The qualified plan for one candidate loop.
struct Plan {
    header: Label,
    /// `(block, inst)` of the IV init `iv := lo` in the preheader.
    init_at: (usize, usize),
    /// `(block, inst)` of the latch `Compare` whose bound is `hi`.
    compare_at: (usize, usize),
    /// The latch block (its terminator holds the exit edge).
    latch: usize,
    /// Label of the block the single exit edge targets.
    exit_to: Label,
    lo: i64,
    hi: i64,
    regions: Vec<StoreRegion>,
    /// Carried scalars in deterministic order.
    carried: Vec<Reg>,
    /// Estimated dynamic work, for candidate selection.
    work: i64,
}

/// Split one loop of `entry` across `tiles` cores. On success the module
/// gains `__tile{k}_<entry>` clones for `k` in `1..tiles`, the entry
/// function keeps slice 0 plus the writeback receive code, and the
/// report says what was cut. `None` leaves the module untouched.
pub fn partition_tiles(module: &mut Module, entry: &str, tiles: usize) -> Option<TileReport> {
    if !(2..=8).contains(&tiles) {
        return None;
    }
    let func = module.function_named(entry)?;
    let plan = best_plan(func, tiles)?;
    // Clones first (from the untouched original), then slice 0 in place.
    let mut clones = Vec::new();
    for k in 1..tiles {
        let mut clone = func.clone();
        clone.name = format!("__tile{k}_{entry}");
        apply_slice(&mut clone, &plan, k, tiles);
        clones.push(clone);
    }
    let f0 = module.function_named_mut(entry).expect("entry exists");
    apply_slice(f0, &plan, 0, tiles);
    for c in clones {
        module.add_function(c);
    }
    Some(TileReport {
        tiles,
        header: plan.header,
        lo: plan.lo,
        hi: plan.hi,
        writebacks: plan.regions.len(),
        carried: plan.carried.len(),
    })
}

/// Slice boundary `E_k`: tile `k` runs iterations `[E_k, E_{k+1})`.
fn cut(lo: i64, hi: i64, k: usize, tiles: usize) -> i64 {
    lo + (hi - lo) * k as i64 / tiles as i64
}

/// The qualifying loop with the most estimated dynamic work, if any.
fn best_plan(func: &Function, tiles: usize) -> Option<Plan> {
    let dom = Dominators::compute(func);
    let loops = natural_loops(func, &dom);
    let live = Liveness::compute(func);
    let mut best: Option<Plan> = None;
    for lp in &loops {
        let Some(plan) = qualify(func, lp, &loops, &dom, &live, tiles) else {
            continue;
        };
        let better = match &best {
            None => true,
            Some(b) => {
                (plan.work, std::cmp::Reverse(plan.header.0))
                    > (b.work, std::cmp::Reverse(b.header.0))
            }
        };
        if better {
            best = Some(plan);
        }
    }
    best
}

/// Check every partitioning precondition for `lp`; build its plan.
fn qualify(
    func: &Function,
    lp: &Loop,
    loops: &[Loop],
    dom: &Dominators,
    live: &Liveness,
    tiles: usize,
) -> Option<Plan> {
    // The partitioned loop must execute exactly once: a loop nested
    // inside an outer loop re-enters, but each helper tile runs its
    // slice once and returns — the second trip would starve tile 0's
    // receive for good (observed on sieve's flag-init loop, which sits
    // inside the benchmark's repeat loop).
    if loops
        .iter()
        .any(|other| other.header != lp.header && other.blocks.contains(&lp.header))
    {
        return None;
    }
    // One exit edge, leaving from the single latch.
    if lp.exits.len() != 1 || lp.latches.len() != 1 {
        return None;
    }
    let (exit_from, exit_to) = lp.exits[0];
    let latch = lp.latches[0];
    if exit_from != latch {
        return None;
    }
    let la = LoopAnalysis::new(func, lp, dom);
    let latch_info = analyze_latch(&la)?;
    let iv = latch_info.iv.reg;
    if latch_info.iv.step != 1 || !latch_info.iv.is_const_step() {
        return None;
    }
    let Operand::Imm(hi) = latch_info.bound else {
        return None;
    };
    // The reaching init: a unique outside predecessor of the header that
    // jumps straight to it, whose last write of the IV is `iv := lo`.
    let preds = func.predecessors();
    let outside: Vec<usize> = preds[lp.header]
        .iter()
        .copied()
        .filter(|p| !lp.contains(*p))
        .collect();
    let [pre] = outside[..] else { return None };
    if !matches!(
        func.blocks[pre].terminator().map(|i| &i.kind),
        Some(InstKind::Jump { target }) if *target == func.blocks[lp.header].label
    ) {
        return None;
    }
    let (init_ii, lo) =
        func.blocks[pre]
            .insts
            .iter()
            .enumerate()
            .rev()
            .find_map(|(ii, inst)| match &inst.kind {
                InstKind::Assign {
                    dst,
                    src: RExpr::Op(Operand::Imm(v)),
                } if *dst == iv => Some((ii, *v)),
                _ => {
                    if inst.kind.defs().contains(&iv) {
                        Some((usize::MAX, 0)) // reaching def is not a constant
                    } else {
                        None
                    }
                }
            })?;
    if init_ii == usize::MAX {
        return None;
    }
    let trip = trip_count_value(lo, hi, 1, latch_info.cmp)?;
    let hi = lo + trip; // normalize Le/Ne to a half-open [lo, hi)
    if trip < tiles as i64 {
        return None;
    }
    // No calls, returns or pre-existing stream/channel machinery inside.
    for &bi in &lp.blocks {
        for inst in &func.blocks[bi].insts {
            match &inst.kind {
                InstKind::Call { .. } | InstKind::Ret => return None,
                k if is_stream_or_chan(k) => return None,
                _ => {}
            }
        }
    }
    // Every store must be affine in the partitioned IV over a global, and
    // every load of a *stored* global must hit the same per-iteration
    // address (no cross-iteration memory dependence between slices).
    let mut regions: BTreeMap<SymId, StoreRegion> = BTreeMap::new();
    let mut loads: Vec<(SymId, Option<Affine>)> = Vec::new();
    for &bi in &lp.blocks {
        for (ii, inst) in func.blocks[bi].insts.iter().enumerate() {
            match &inst.kind {
                InstKind::GStore { src, mem } => {
                    let a = la.eval_memref(mem, (bi, ii), 8)?;
                    let Region::Global(sym) = a.region else {
                        return None;
                    };
                    if a.iv != Some(iv) || a.inv.is_some() || a.coeff < mem.width.bytes() {
                        return None;
                    }
                    let class = match src {
                        Operand::Reg(r) => r.class,
                        Operand::Imm(_) => RegClass::Int,
                        Operand::FImm(_) => RegClass::Flt,
                    };
                    let region = StoreRegion {
                        sym,
                        coeff: a.coeff,
                        off: a.off,
                        width: mem.width,
                        class,
                    };
                    match regions.get(&sym) {
                        None => {
                            regions.insert(sym, region);
                        }
                        Some(r) if *r == region => {}
                        Some(_) => return None, // two shapes over one global
                    }
                }
                InstKind::GLoad { mem, .. } => {
                    let a = la.eval_memref(mem, (bi, ii), 8);
                    let sym = match (&a, mem.sym) {
                        (Some(af), _) => match af.region {
                            Region::Global(s) => s,
                            _ => return None, // unknown base may alias a store
                        },
                        (None, Some(s)) => s,
                        (None, None) => return None,
                    };
                    loads.push((sym, a));
                }
                _ => {}
            }
        }
    }
    for (sym, a) in &loads {
        let Some(st) = regions.get(sym) else {
            continue; // read-only global: replicated, always safe
        };
        let Some(a) = a else { return None };
        if a.iv != Some(iv) || a.inv.is_some() || a.coeff != st.coeff || a.off != st.off {
            return None;
        }
    }
    // Carried scalars: live into the header and written in the loop. They
    // chain the slices; a carried value (or any loop-defined register)
    // still live after the loop would need the *last* slice's value on
    // tile 0, which the writeback protocol does not provide — reject.
    let defined: HashSet<Reg> = lp
        .blocks
        .iter()
        .flat_map(|&bi| func.blocks[bi].insts.iter())
        .flat_map(|i| i.kind.defs())
        .collect();
    let mut carried: Vec<Reg> = live.live_in[lp.header]
        .iter()
        .copied()
        .filter(|r| *r != iv && defined.contains(r))
        .collect();
    carried.sort();
    if live.live_in[exit_to].iter().any(|r| defined.contains(r)) {
        return None;
    }
    // Estimated dynamic work: trip * per-iteration instruction count,
    // weighting blocks of nested loops by their own trips (10 each when
    // unknown) — so a loop wrapping a heavy inner loop wins selection.
    let mut work = 0i64;
    for &bi in &lp.blocks {
        let mut weight = 1i64;
        for inner in loops {
            if inner.header != lp.header && inner.blocks.is_subset(&lp.blocks) && inner.contains(bi)
            {
                weight = weight.saturating_mul(inner_trip(func, inner, dom).unwrap_or(10));
            }
        }
        work = work.saturating_add(weight.saturating_mul(func.blocks[bi].insts.len() as i64));
    }
    work = work.saturating_mul(trip);
    Some(Plan {
        header: func.blocks[lp.header].label,
        init_at: (pre, init_ii),
        compare_at: latch_info.compare,
        latch,
        exit_to: func.blocks[exit_to].label,
        lo,
        hi,
        regions: regions.into_values().collect(),
        carried,
        work,
    })
}

/// Static trip count of a nested loop, for work estimation only.
fn inner_trip(func: &Function, lp: &Loop, dom: &Dominators) -> Option<i64> {
    let la = LoopAnalysis::new(func, lp, dom);
    let l = analyze_latch(&la)?;
    let Operand::Imm(bound) = l.bound else {
        return None;
    };
    // Init unknown in general; a constant-bound count-up loop from an
    // unknown start still gets a bounded estimate.
    let init = 0;
    trip_count_value(init, bound, l.iv.step, l.cmp).filter(|t| *t > 0)
}

fn is_stream_or_chan(k: &InstKind) -> bool {
    matches!(
        k,
        InstKind::StreamIn { .. }
            | InstKind::StreamOut { .. }
            | InstKind::StreamGather { .. }
            | InstKind::StreamScatter { .. }
            | InstKind::StreamStop { .. }
            | InstKind::ChanSend { .. }
            | InstKind::ChanRecv { .. }
            | InstKind::StreamSend { .. }
            | InstKind::StreamRecv { .. }
            | InstKind::BranchStream { .. }
    )
}

/// Rewrite `func` into tile `k`'s slice of the plan.
fn apply_slice(func: &mut Function, plan: &Plan, k: usize, tiles: usize) {
    let e_lo = cut(plan.lo, plan.hi, k, tiles);
    let e_hi = cut(plan.lo, plan.hi, k + 1, tiles);
    let n_k = e_hi - e_lo;
    // IV init `iv := lo` -> `iv := E_k`.
    let (ibi, iii) = plan.init_at;
    if let InstKind::Assign {
        src: RExpr::Op(Operand::Imm(v)),
        ..
    } = &mut func.blocks[ibi].insts[iii].kind
    {
        *v = e_lo;
    }
    // Latch bound `hi` -> `E_{k+1}` (whichever Compare operand is the
    // immediate; analyze_latch proved exactly one side is).
    let (cbi, cii) = plan.compare_at;
    if let InstKind::Compare { a, b, .. } = &mut func.blocks[cbi].insts[cii].kind {
        for op in [a, b] {
            if let Operand::Imm(v) = op {
                *v = e_hi;
            }
        }
    }
    // Carried scalars flow in from tile k-1 just before the loop.
    if k > 0 {
        for &s in &plan.carried {
            insert_before_terminator(
                func,
                ibi,
                InstKind::ChanRecv {
                    peer: (k - 1) as u8,
                    dst: s,
                },
            );
        }
    }
    // Build the post-loop block and swing the exit edge onto it.
    let post = func.add_block();
    let term = func.blocks[plan.latch].terminator().map(|i| i.kind.clone());
    if let Some(mut kind) = term {
        for l in branch_targets_mut(&mut kind) {
            if *l == plan.exit_to {
                *l = post;
            }
        }
        let n = func.blocks[plan.latch].insts.len();
        func.blocks[plan.latch].insts[n - 1].kind = kind;
    }
    if k + 1 < tiles {
        for &s in &plan.carried {
            func.push(
                post,
                InstKind::ChanSend {
                    peer: (k + 1) as u8,
                    src: Operand::Reg(s),
                    class: s.class,
                },
            );
        }
    }
    if k > 0 {
        // Sender: pump each stored region's slice to tile 0 and return.
        // `Sin` fills the FIFO from memory while `Ssend` drains it into
        // the channel — a straight-line core-to-core DMA; consecutive
        // regions serialize on the FIFO's stream exclusivity.
        for r in &plan.regions {
            let fifo = DataFifo::new(r.class, 0);
            let base = func.new_vreg(RegClass::Int);
            func.push(
                post,
                InstKind::LoadAddr {
                    dst: base,
                    sym: r.sym,
                    disp: r.coeff * e_lo + r.off,
                },
            );
            func.push(
                post,
                InstKind::StreamIn {
                    fifo,
                    base: Operand::Reg(base),
                    count: Some(Operand::Imm(n_k)),
                    stride: Operand::Imm(r.coeff),
                    width: r.width,
                    tested: false,
                },
            );
            func.push(
                post,
                InstKind::StreamSend {
                    peer: 0,
                    fifo,
                    count: Operand::Imm(n_k),
                },
            );
        }
        func.push(post, InstKind::Ret);
        return;
    }
    // Tile 0: receive every other tile's slices in tile order (matching
    // each sender's region order), store them through `Sout`, then fall
    // through to the original sequel.
    let mut cursor = post;
    for peer in 1..tiles {
        let p_lo = cut(plan.lo, plan.hi, peer, tiles);
        let p_hi = cut(plan.lo, plan.hi, peer + 1, tiles);
        let p_n = p_hi - p_lo;
        for r in &plan.regions {
            let fifo = DataFifo::new(r.class, 0);
            func.push(
                cursor,
                InstKind::StreamRecv {
                    peer: peer as u8,
                    fifo,
                    count: Operand::Imm(p_n),
                    tested: true,
                },
            );
            let base = func.new_vreg(RegClass::Int);
            func.push(
                cursor,
                InstKind::LoadAddr {
                    dst: base,
                    sym: r.sym,
                    disp: r.coeff * p_lo + r.off,
                },
            );
            func.push(
                cursor,
                InstKind::StreamOut {
                    fifo,
                    base: Operand::Reg(base),
                    count: Some(Operand::Imm(p_n)),
                    stride: Operand::Imm(r.coeff),
                    width: r.width,
                },
            );
            // The copy loop moves each received element from the FIFO's
            // input side to its output side, where the out-stream picks
            // it up; `jNI` counts the tested receive down.
            let body = func.add_block();
            let next = func.add_block();
            func.push(cursor, InstKind::Jump { target: body });
            func.push(
                body,
                InstKind::Assign {
                    dst: fifo.reg(),
                    src: RExpr::Op(Operand::Reg(fifo.reg())),
                },
            );
            func.push(
                body,
                InstKind::BranchStream {
                    fifo,
                    target: body,
                    els: next,
                },
            );
            cursor = next;
        }
    }
    func.push(
        cursor,
        InstKind::Jump {
            target: plan.exit_to,
        },
    );
}

/// Insert `kind` immediately before the block's terminator.
fn insert_before_terminator(func: &mut Function, bi: usize, kind: InstKind) {
    let id = func.new_inst_id();
    let b = &mut func.blocks[bi];
    let at = b.insts.len().saturating_sub(1);
    b.insts.insert(at, Inst { id, kind });
}

/// The labels a terminator can transfer control to.
fn branch_targets_mut(kind: &mut InstKind) -> Vec<&mut Label> {
    match kind {
        InstKind::Jump { target } => vec![target],
        InstKind::Branch { target, els, .. } | InstKind::BranchStream { target, els, .. } => {
            vec![target, els]
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuts_cover_the_space_in_order() {
        for tiles in 2..=8usize {
            let (lo, hi) = (3i64, 517i64);
            let mut prev = lo;
            for k in 0..tiles {
                let a = cut(lo, hi, k, tiles);
                let b = cut(lo, hi, k + 1, tiles);
                assert_eq!(a, prev);
                assert!(b > a, "non-empty slice");
                prev = b;
            }
            assert_eq!(prev, hi);
        }
    }
}
