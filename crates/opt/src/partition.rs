//! Memory-reference partitions (Steps 1–3 of the paper's recurrence
//! algorithm).
//!
//! "The recurrence detection algorithm builds partitions that hold
//! information about the memory references being performed in the loop. The
//! information is represented in a vector of the form
//! `(lno, acc, iv^dir, cee, dee, roffset)`."

use std::collections::BTreeMap;

use wm_ir::{InstId, MemAccess, Reg, Width};

use crate::affine::{Affine, LoopAnalysis, Region};

/// How unresolved pointer references are treated when forming partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AliasModel {
    /// Pointer-based references may touch anything: they are "added to each
    /// group", poisoning every partition (the paper's default behaviour).
    #[default]
    Conservative,
    /// Distinct pointer bases address disjoint regions (the guarantee a
    /// caller provides for kernels like `dot(a, b, n)`; compare C99
    /// `restrict`).
    NoAlias,
}

/// One memory reference of the loop — the paper's partition vector.
#[derive(Debug, Clone)]
pub struct RefInfo {
    /// `lno`: the stable instruction id of the reference.
    pub id: InstId,
    /// Location `(block index, inst index)` of the reference.
    pub pos: (usize, usize),
    /// `acc`: true for a read.
    pub is_load: bool,
    /// Access width.
    pub width: Width,
    /// Affine decomposition, if the address could be analyzed.
    pub affine: Option<Affine>,
    /// Per-iteration byte stride (`cee` × loop increment); `None` when the
    /// loop increment is a register (symbolic stride).
    pub stride: Option<i64>,
    /// The register step of a symbolic-stride reference.
    pub sym_step: Option<Reg>,
    /// `roffset`: `dee` − base offset, valid when the partition is safe.
    pub roffset: i64,
}

/// A partition: references presumed to touch one disjoint memory region.
#[derive(Debug, Clone)]
pub struct MemPartition {
    /// The region identity.
    pub region: Region,
    /// References in the partition.
    pub refs: Vec<RefInfo>,
    /// Step 3's verdict: same induction variable, same `cee`, offsets
    /// divisible by `cee`.
    pub safe: bool,
    /// The common induction variable (valid when `safe`).
    pub iv: Option<Reg>,
    /// The common `cee` (valid when `safe`).
    pub cee: i64,
    /// The common per-iteration stride (valid when `safe`; 0 when the
    /// stride is symbolic).
    pub stride: i64,
    /// The common symbolic step register, for register-stride loops.
    pub sym_step: Option<Reg>,
    /// The base offset subtracted from every `dee` to form `roffset`.
    pub base_offset: i64,
}

/// A read/write pair forming a loop-carried recurrence: the read fetches the
/// value the write stored `distance` iterations earlier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecurrencePair {
    /// Index of the read in `MemPartition::refs`.
    pub read: usize,
    /// Index of the write in `MemPartition::refs`.
    pub write: usize,
    /// Positive iteration distance — the paper's "degree".
    pub distance: i64,
}

impl MemPartition {
    /// Step 4a: identify read/write pairs — "memory references where a read
    /// fetches the value written on a previous iteration" — and their
    /// distances in iterations.
    pub fn recurrence_pairs(&self) -> Vec<RecurrencePair> {
        let mut out = Vec::new();
        if !self.safe || self.stride == 0 {
            // symbolic-stride partitions cannot prove pair distances;
            // callers must treat mixed read/write symbolic partitions as
            // having recurrences
            return out;
        }
        for (wi, w) in self.refs.iter().enumerate() {
            if w.is_load {
                continue;
            }
            for (ri, r) in self.refs.iter().enumerate() {
                if !r.is_load {
                    continue;
                }
                let delta = w.roffset - r.roffset;
                if delta != 0 && delta % self.stride == 0 {
                    let d = delta / self.stride;
                    if d > 0 {
                        out.push(RecurrencePair {
                            read: ri,
                            write: wi,
                            distance: d,
                        });
                    }
                }
            }
        }
        out
    }

    /// Does the partition contain a read and a write to the *same* offset
    /// (an intra-iteration read-modify-write)?
    pub fn has_same_offset_rw(&self) -> bool {
        self.refs.iter().any(|w| {
            !w.is_load
                && self
                    .refs
                    .iter()
                    .any(|r| r.is_load && r.roffset == w.roffset)
        })
    }
}

/// The partitions of one loop.
#[derive(Debug, Clone)]
pub struct PartitionSet {
    /// Partitions in deterministic (region) order.
    pub partitions: Vec<MemPartition>,
    /// True when some reference's region was unknown; such a reference was
    /// added to every partition (and typically marks them all unsafe).
    pub has_unknown: bool,
}

/// Build the partitions for the loop under analysis (Steps 1–3).
pub fn build_partitions(la: &LoopAnalysis<'_>, alias: AliasModel) -> PartitionSet {
    build_partitions_excluding(la, alias, &[])
}

/// [`build_partitions`] with the references at `exclude` left out of the
/// analysis entirely. The streaming pass detaches recognized indirect
/// (index-fed) references this way: their data addresses are not affine,
/// so keeping them in would mark every partition of the loop unsafe even
/// though the pass has already proven them alias-safe by other means.
pub fn build_partitions_excluding(
    la: &LoopAnalysis<'_>,
    alias: AliasModel,
    exclude: &[(usize, usize)],
) -> PartitionSet {
    // Step 1+2: collect references with their affine decompositions.
    let mut refs: Vec<(Region, RefInfo)> = Vec::new();
    for &bi in &la.lp.blocks {
        for (ii, inst) in la.func.blocks[bi].insts.iter().enumerate() {
            if exclude.contains(&(bi, ii)) {
                continue;
            }
            let Some(acc) = inst.kind.mem_access() else {
                continue;
            };
            let affine = match &acc {
                MemAccess::Generic { mem, .. } => la.eval_memref(mem, (bi, ii), 8),
                MemAccess::Wm { addr, .. } => la.eval_expr(addr, (bi, ii), 8),
            };
            let region = match (&affine, alias) {
                (None, _) => Region::Unknown,
                (Some(a), AliasModel::NoAlias) => a.region,
                (Some(a), AliasModel::Conservative) => match a.region {
                    Region::Global(s) => Region::Global(s),
                    // Pointers of unknown provenance may touch anything.
                    Region::Reg(_) | Region::Unknown => Region::Unknown,
                },
            };
            // A reference whose region is unknown has no comparable `dee`:
            // drop its decomposition so it fails Step 3a in every partition
            // it joins ("generally, a pointer reference will not have an
            // induction variable").
            let affine = if region == Region::Unknown {
                None
            } else {
                affine
            };
            let stride = affine.as_ref().and_then(|a| la.stride_of(a));
            let sym_step = affine.as_ref().and_then(|a| la.sym_step_of(a));
            refs.push((
                region,
                RefInfo {
                    id: inst.id,
                    pos: (bi, ii),
                    is_load: acc.is_load(),
                    width: acc.width(),
                    affine,
                    stride,
                    sym_step,
                    roffset: 0,
                },
            ));
        }
    }

    let has_unknown = refs.iter().any(|(r, _)| *r == Region::Unknown);

    // Group by region; unknown references join every group.
    let mut groups: BTreeMap<Region, Vec<RefInfo>> = BTreeMap::new();
    for (region, info) in &refs {
        if *region != Region::Unknown {
            groups.entry(*region).or_default().push(info.clone());
        }
    }
    if has_unknown {
        if groups.is_empty() {
            groups.insert(Region::Unknown, Vec::new());
        }
        for (_, members) in groups.iter_mut() {
            for (region, info) in &refs {
                if *region == Region::Unknown {
                    members.push(info.clone());
                }
            }
        }
    }

    // Step 3: safety per partition.
    let mut partitions = Vec::new();
    for (region, mut members) in groups {
        members.sort_by_key(|r| r.id);
        let mut safe = true;
        let mut iv = None;
        let mut cee = 0;
        let mut stride = 0;
        let mut sym_step = None;
        // Step 3a: same induction variable and same cee throughout. A
        // symbolic (register) loop step is acceptable when every member
        // shares it.
        for (i, m) in members.iter().enumerate() {
            let usable = matches!(&m.affine, Some(a) if a.iv.is_some() && a.coeff != 0)
                && (m.stride.is_some() || m.sym_step.is_some());
            if !usable {
                safe = false;
                continue;
            }
            let a = m.affine.as_ref().unwrap();
            if i == 0 {
                iv = a.iv;
                cee = a.coeff;
                stride = m.stride.unwrap_or(0);
                sym_step = m.sym_step;
            } else if a.iv != iv || a.coeff != cee {
                safe = false;
            }
            // offsets are only comparable between references sharing the
            // same invariant term (e.g. the same row base `i*n`)
            if i > 0
                && members[0]
                    .affine
                    .as_ref()
                    .map(|first| first.inv != a.inv)
                    .unwrap_or(true)
            {
                safe = false;
            }
        }
        // Step 3b: base offset and divisibility of relative offsets.
        let mut base_offset = 0;
        if safe {
            base_offset = members
                .iter()
                .filter_map(|m| m.affine.as_ref().map(|a| a.off))
                .min()
                .unwrap_or(0);
            for m in members.iter_mut() {
                let off = m.affine.as_ref().expect("safe implies affine").off;
                m.roffset = off - base_offset;
                if cee != 0 && m.roffset % cee != 0 {
                    safe = false;
                }
            }
            // A symbolic-stride partition with distinct offsets cannot
            // prove pair distances; keep only the same-offset case.
            if sym_step.is_some() && members.iter().any(|m| m.roffset != 0) {
                safe = false;
            }
        }
        partitions.push(MemPartition {
            region,
            refs: members,
            safe,
            iv,
            cee,
            stride,
            sym_step,
            base_offset,
        });
    }
    PartitionSet {
        partitions,
        has_unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{natural_loops, Dominators};
    use wm_ir::Function;

    fn analyze(src: &str, fname: &str) -> (Function, wm_ir::Module) {
        let m = wm_frontend::compile(src).unwrap();
        let f = m.function_named(fname).unwrap().clone();
        (f, m)
    }

    const LOOP5: &str = r"
        double x[1000]; double y[1000]; double z[1000];
        void loop5(int n) {
            int i;
            for (i = 2; i < n; i++)
                x[i] = z[i] * (y[i] - x[i-1]);
        }
    ";

    fn partitions_of(f: &Function, alias: AliasModel) -> PartitionSet {
        let dom = Dominators::compute(f);
        let loops = natural_loops(f, &dom);
        assert_eq!(loops.len(), 1);
        let la = LoopAnalysis::new(f, &loops[0], &dom);
        build_partitions(&la, alias)
    }

    #[test]
    fn livermore5_produces_three_partitions() {
        let (f, m) = analyze(LOOP5, "loop5");
        let ps = partitions_of(&f, AliasModel::Conservative);
        assert_eq!(ps.partitions.len(), 3, "X, Y, Z partitions");
        assert!(!ps.has_unknown);
        let x = Region::Global(m.lookup("x").unwrap());
        let px = ps.partitions.iter().find(|p| p.region == x).unwrap();
        assert!(px.safe);
        assert_eq!(px.refs.len(), 2);
        assert_eq!(px.cee, 8);
        assert_eq!(px.stride, 8);
        // paper: read roffset -8, write roffset 0 (relative to base _x-8:
        // min-normalized to 0 and 8)
        let read = px.refs.iter().find(|r| r.is_load).unwrap();
        let write = px.refs.iter().find(|r| !r.is_load).unwrap();
        assert_eq!(write.roffset - read.roffset, 8);
    }

    #[test]
    fn livermore5_recurrence_pair_has_degree_one() {
        let (f, m) = analyze(LOOP5, "loop5");
        let ps = partitions_of(&f, AliasModel::Conservative);
        let x = Region::Global(m.lookup("x").unwrap());
        let px = ps.partitions.iter().find(|p| p.region == x).unwrap();
        let pairs = px.recurrence_pairs();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].distance, 1, "x[i-1] is a degree-1 recurrence");
        // Y and Z partitions have no pairs
        for p in &ps.partitions {
            if p.region != x {
                assert!(p.recurrence_pairs().is_empty());
                assert!(p.safe);
            }
        }
    }

    #[test]
    fn pointer_references_poison_partitions_conservatively() {
        let (f, _m) = analyze(
            r"
            double x[100];
            void f(double *p, int n) {
                int i;
                for (i = 0; i < n; i++)
                    x[i] = p[i];
            }
        ",
            "f",
        );
        let ps = partitions_of(&f, AliasModel::Conservative);
        assert!(ps.has_unknown);
        // the pointer read joins the x partition and breaks its safety
        // (different induction coefficients/regions cannot be proven)
        let px = &ps.partitions[0];
        assert_eq!(px.refs.len(), 2);

        // with no-alias the pointer gets its own safe partition
        let ps = partitions_of(&f, AliasModel::NoAlias);
        assert!(!ps.has_unknown);
        assert_eq!(ps.partitions.len(), 2);
        assert!(ps.partitions.iter().all(|p| p.safe));
    }

    #[test]
    fn same_offset_read_modify_write_is_not_a_recurrence() {
        let (f, _m) = analyze(
            r"
            int a[100];
            void f(int n) {
                int i;
                for (i = 0; i < n; i++)
                    a[i] = a[i] + 1;
            }
        ",
            "f",
        );
        let ps = partitions_of(&f, AliasModel::Conservative);
        assert_eq!(ps.partitions.len(), 1);
        let p = &ps.partitions[0];
        assert!(p.safe);
        assert!(p.recurrence_pairs().is_empty());
        assert!(p.has_same_offset_rw());
    }

    #[test]
    fn anti_dependence_is_not_a_recurrence() {
        // read of a[i+1] happens before it is overwritten: distance -1
        let (f, _m) = analyze(
            r"
            int a[100];
            void f(int n) {
                int i;
                for (i = 0; i < n; i++)
                    a[i] = a[i+1];
            }
        ",
            "f",
        );
        let ps = partitions_of(&f, AliasModel::Conservative);
        let p = &ps.partitions[0];
        assert!(p.safe);
        assert!(p.recurrence_pairs().is_empty());
    }

    #[test]
    fn degree_two_recurrence_detected() {
        let (f, _m) = analyze(
            r"
            double a[100];
            void f(int n) {
                int i;
                for (i = 2; i < n; i++)
                    a[i] = a[i-1] + a[i-2];
            }
        ",
            "f",
        );
        let ps = partitions_of(&f, AliasModel::Conservative);
        let p = &ps.partitions[0];
        assert!(p.safe);
        let mut pairs = p.recurrence_pairs();
        pairs.sort_by_key(|p| p.distance);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].distance, 1);
        assert_eq!(pairs[1].distance, 2);
    }
}
