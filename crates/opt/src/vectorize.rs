//! Vectorization of elementwise map loops onto the VEU.
//!
//! "The architecture also supports vector operations … Conceptually the
//! iterations of the loop are performed simultaneously by the vector
//! execution unit (VEU)." And: "of course, when vector code is possible,
//! the compiler generates code that uses the vector unit. It is the
//! compiler's responsibility to detect codes that have recurrences and to
//! generate streaming code."
//!
//! This pass recognizes countable innermost loops whose body is a pure
//! elementwise **map** over doubles —
//!
//! ```text
//! for (i = lo; i < hi; i++)  c[i] = a[i] ⊙ b[i];      // or a[i] ⊙ konst
//! ```
//!
//! — with unit-coefficient safe partitions and no loop-carried dependence,
//! and rewrites them as a vector loop over N-element groups:
//!
//! ```text
//!     full  := count / N            -- number of whole vectors
//!     fullN := full * N
//!     SinV p0, &a[lo], fullN        -- streams feed the VEU ports
//!     SinV p1, &b[lo], fullN
//!     SoutV    &c[lo], fullN
//! vloop:
//!     vld v1, p0 ; vld v2, p1 ; vop v0 := v1 ⊙ v2 ; vst v0
//!     jNIv vloop
//! tail:
//!     i := lo + fullN               -- the original loop handles count % N
//!     if (i cmp hi) goto original_body
//! ```
//!
//! Anything the pattern does not cover (reductions, recurrences,
//! conditionals, integer data) is left for the streaming pass, exactly the
//! division of labor the paper describes.

use wm_ir::{BinOp, CmpOp, Function, Inst, InstKind, Label, Operand, RExpr, Reg, RegClass, Width};

use crate::affine::{analyze_latch, LatchInfo, LoopAnalysis, Region};
use crate::cfg::{ensure_preheader, natural_loops, Dominators};
use crate::partition::{build_partitions, AliasModel};

/// What the pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VectorReport {
    /// Map loops rewritten onto the VEU.
    pub loops_vectorized: usize,
}

/// One recognized streamed operand of the map.
#[derive(Debug, Clone, Copy)]
enum MapInput {
    /// `a[i]`-style read, with its region/offset for the stream base.
    Array { region: Region, off: i64 },
    /// A floating-point literal.
    Const(f64),
}

/// Vectorize every eligible innermost map loop of `func` (WM-expanded
/// form). `n` is the vector length (must match the simulator's
/// `WmConfig::veu_length`).
pub fn vectorize_maps(func: &mut Function, alias: AliasModel, n: i64) -> VectorReport {
    let mut report = VectorReport::default();
    let mut visited: Vec<Label> = Vec::new();
    loop {
        let dom = Dominators::compute(func);
        let loops = natural_loops(func, &dom);
        let candidate = loops
            .iter()
            .find(|lp| lp.is_innermost(&loops) && !visited.contains(&func.blocks[lp.header].label));
        let Some(lp) = candidate else { break };
        visited.push(func.blocks[lp.header].label);
        let lp = lp.clone();
        if vectorize_one(func, &lp, &dom, alias, n) {
            report.loops_vectorized += 1;
        }
    }
    report
}

fn vectorize_one(
    func: &mut Function,
    lp: &crate::cfg::Loop,
    dom: &Dominators,
    alias: AliasModel,
    n: i64,
) -> bool {
    // single-block loop only
    if lp.blocks.len() != 1 || lp.latches.len() != 1 {
        return false;
    }
    let body = lp.header;

    // ---- analysis ----
    let plan = {
        let la = LoopAnalysis::new(func, lp, dom);
        let Some(latch) = analyze_latch(&la) else {
            return false;
        };
        if !latch.iv.is_const_step() || latch.iv.step != 1 {
            return false; // unit steps only (stride = 8 bytes)
        }
        let parts = build_partitions(&la, alias);
        recognize_map(func, &la, &parts, body, latch)
    };
    let Some(plan) = plan else { return false };

    // ---- transformation ----
    let pre = ensure_preheader(func, lp);
    let body_label = func.blocks[body].label;

    // count (elements) into a register
    let count = match plan.static_count {
        Some(c) => {
            if c < 2 * n {
                return false; // not worth a vector setup
            }
            Operand::Imm(c)
        }
        None => super::streaming::emit_trip_count_public(func, pre, &plan.latch),
    };
    // full := count / N ; fullN := full * N
    let full = new_int(func, pre, RExpr::Bin(BinOp::Div, count, Operand::Imm(n)));
    let full_n = new_int(
        func,
        pre,
        RExpr::Bin(BinOp::Mul, full.into(), Operand::Imm(n)),
    );

    // stream bases (the IV register still holds its initial value here)
    let iv = plan.latch.iv.reg;
    let mut ports = Vec::new();
    let mut next_port = 0u8;
    for input in &plan.inputs {
        match input {
            MapInput::Array { region, off } => {
                let base = emit_region_base(func, pre, *region, *off, iv);
                let vectors = if next_port == 0 {
                    Operand::Reg(full)
                } else {
                    Operand::Imm(0) // only one stream loads the counter
                };
                insert_before_jump(
                    func,
                    pre,
                    InstKind::VStreamIn {
                        port: next_port,
                        base,
                        count: full_n.into(),
                        stride: Operand::Imm(8),
                        vectors,
                    },
                );
                ports.push(Some(next_port));
                next_port += 1;
            }
            MapInput::Const(_) => ports.push(None),
        }
    }
    let out_base = emit_region_base(func, pre, plan.out_region, plan.out_off, iv);
    insert_before_jump(
        func,
        pre,
        InstKind::VStreamOut {
            base: out_base,
            count: full_n.into(),
            stride: Operand::Imm(8),
        },
    );

    // vector loop block
    let vloop = func.add_block();
    // tail head: bump the IV past the vectorized elements and re-test
    let tail = func.add_block();

    // preheader jumps to the vector loop instead of the body
    {
        let pre_block = func.block_mut(pre);
        let last = pre_block.insts.last_mut().expect("preheader jump");
        *last.kind.targets_mut()[0] = vloop;
    }

    // splat constants once, before the loop? They live in vector registers
    // v3+; emit them at the top of the vector loop's preheader path by
    // putting them in the vloop block before the loads would re-splat each
    // iteration — cheap (1 cycle) and keeps the pass simple.
    let mut kinds: Vec<InstKind> = Vec::new();
    let mut in_regs = [0u8; 2];
    let mut splat_reg = 3u8;
    for (k, input) in plan.inputs.iter().enumerate() {
        match (input, ports[k]) {
            (MapInput::Array { .. }, Some(p)) => {
                let vreg = (k + 1) as u8;
                kinds.push(InstKind::VLoad { vreg, port: p });
                in_regs[k] = vreg;
            }
            (MapInput::Const(v), _) => {
                kinds.push(InstKind::VecBroadcast {
                    dst: splat_reg,
                    value: *v,
                });
                in_regs[k] = splat_reg;
                splat_reg += 1;
            }
            _ => unreachable!(),
        }
    }
    kinds.push(InstKind::VecBin {
        op: plan.op,
        dst: 0,
        a: in_regs[0],
        b: in_regs[1],
    });
    kinds.push(InstKind::VStore { vreg: 0 });
    kinds.push(InstKind::BranchVec {
        target: vloop,
        els: tail,
    });
    for k in kinds {
        func.push(vloop, k);
    }

    // tail: iv += fullN ; if (iv cmp bound) goto body else exit
    func.push(
        tail,
        InstKind::Assign {
            dst: iv,
            src: RExpr::Bin(BinOp::Add, iv.into(), full_n.into()),
        },
    );
    func.push(
        tail,
        InstKind::Compare {
            class: RegClass::Int,
            op: plan.tail_cmp,
            a: iv.into(),
            b: plan.bound,
        },
    );
    func.push(
        tail,
        InstKind::Branch {
            class: RegClass::Int,
            when: true,
            target: body_label,
            els: plan.exit,
        },
    );
    true
}

/// The recognized map.
struct MapPlan {
    inputs: Vec<MapInput>,
    op: BinOp,
    out_region: Region,
    out_off: i64,
    latch: LatchInfo,
    static_count: Option<i64>,
    /// the continue-comparison for the scalar tail
    tail_cmp: CmpOp,
    bound: Operand,
    exit: Label,
}

/// Match the loop body against the map pattern. Expected WM-expanded shape
/// (modulo interleaving):
///
/// ```text
/// WLoad a ; va := f0 ; [WLoad b ; vb := f0 ;]
/// f0 := va ⊙ vb|konst ; WStore c ; iv := iv + 1 ; Compare ; Branch
/// ```
#[allow(clippy::too_many_lines)]
fn recognize_map(
    func: &Function,
    la: &LoopAnalysis<'_>,
    parts: &crate::partition::PartitionSet,
    body: usize,
    latch: LatchInfo,
) -> Option<MapPlan> {
    use std::collections::HashMap;

    // every partition must be safe, unit-iv, D8 and recurrence-free
    let mut region_of_ref: HashMap<wm_ir::InstId, (Region, i64)> = HashMap::new();
    for p in &parts.partitions {
        if !p.safe || p.region == Region::Unknown || p.cee != 8 || p.sym_step.is_some() {
            return None;
        }
        if !p.recurrence_pairs().is_empty() || p.has_same_offset_rw() {
            // a read-modify-write map (c[i] = c[i] op k) would need the
            // read and write ordered through the VEU; skip
            return None;
        }
        for r in &p.refs {
            let a = r.affine.as_ref()?;
            if a.inv.is_some() || a.off != 0 {
                return None; // keep the pattern strict: c[i] = a[i] ⊙ b[i]
            }
            region_of_ref.insert(r.id, (p.region, a.off));
        }
    }

    let insts = &func.blocks[body].insts;
    let mut loads: Vec<(Region, i64, Reg)> = Vec::new(); // (region, off, dequeued-into)
    let mut store: Option<(Region, i64)> = None;
    // the compute may appear fused into the enqueue (`f0 := va ⊙ vb`, the
    // post-combine form) or as a separate instruction followed by an
    // enqueueing copy (`v := va ⊙ vb ; f0 := v`, the expansion form)
    let mut compute: Option<(Reg, BinOp, Operand, Operand)> = None;
    let mut enqueued: Option<Operand> = None;
    let mut i = 0;
    while i < insts.len() {
        match &insts[i].kind {
            InstKind::WLoad { fifo, width, .. } => {
                if *width != Width::D8 || fifo.class != RegClass::Flt || fifo.index != 0 {
                    return None;
                }
                let (region, off) = *region_of_ref.get(&insts[i].id)?;
                // paired dequeue must follow immediately
                let InstKind::Assign { dst, src } = &insts.get(i + 1)?.kind else {
                    return None;
                };
                if *src != RExpr::Op(Operand::Reg(Reg::flt(0))) || dst.is_fifo() {
                    return None;
                }
                loads.push((region, off, *dst));
                i += 2;
            }
            InstKind::Assign { dst, src } if *dst == Reg::flt(0) => {
                if enqueued.is_some() {
                    return None;
                }
                match src {
                    RExpr::Bin(op, a, b) if op.is_float() => {
                        if compute.is_some() {
                            return None;
                        }
                        compute = Some((Reg::flt(0), *op, *a, *b));
                        enqueued = Some(Operand::Reg(Reg::flt(0)));
                    }
                    RExpr::Op(a @ Operand::Reg(_)) => enqueued = Some(*a),
                    _ => return None,
                }
                i += 1;
            }
            InstKind::Assign { dst, src } if !dst.is_fifo() && *dst != latch.iv.reg => {
                // the separate compute instruction
                if compute.is_some() {
                    return None;
                }
                let RExpr::Bin(op, a, b) = src else {
                    return None;
                };
                if !op.is_float() {
                    return None;
                }
                compute = Some((*dst, *op, *a, *b));
                i += 1;
            }
            InstKind::WStore { unit, width, .. } => {
                if *width != Width::D8 || *unit != RegClass::Flt || store.is_some() {
                    return None;
                }
                let (region, off) = *region_of_ref.get(&insts[i].id)?;
                store = Some((region, off));
                i += 1;
            }
            InstKind::Assign { dst, src } if *dst == latch.iv.reg => {
                // the IV increment, already validated by the analysis
                let RExpr::Bin(BinOp::Add, _, _) = src else {
                    return None;
                };
                i += 1;
            }
            InstKind::Compare { .. } | InstKind::Branch { .. } => i += 1,
            _ => return None,
        }
    }
    let (cdst, op, a, b) = compute?;
    // the enqueued value must be the compute's result
    match enqueued? {
        Operand::Reg(r) if r == cdst || r.is_fifo() => {}
        _ => return None,
    }
    let (out_region, out_off) = store?;
    if loads.is_empty() || loads.len() > 2 {
        return None;
    }
    // map the compute operands onto the loads / constants, in order
    let mut inputs = Vec::new();
    for operand in [a, b] {
        match operand {
            Operand::Reg(r) => {
                let (region, off, _) = loads.iter().find(|(_, _, v)| *v == r)?;
                inputs.push(MapInput::Array {
                    region: *region,
                    off: *off,
                });
            }
            Operand::FImm(v) => inputs.push(MapInput::Const(v)),
            Operand::Imm(_) => return None,
        }
    }
    // operand order must match dequeue (load) order for FIFO-less VEU ports
    let array_order: Vec<Region> = inputs
        .iter()
        .filter_map(|m| match m {
            MapInput::Array { region, .. } => Some(*region),
            MapInput::Const(_) => None,
        })
        .collect();
    let load_order: Vec<Region> = loads.iter().map(|(r, _, _)| *r).collect();
    if array_order != load_order {
        return None;
    }
    // the out region must not be read
    if inputs
        .iter()
        .any(|m| matches!(m, MapInput::Array { region, .. } if *region == out_region))
    {
        return None;
    }

    // exit label of the latch branch
    let (lbi, lii) = latch.branch;
    let header_label = func.blocks[la.lp.header].label;
    let InstKind::Branch { target, els, .. } = &func.blocks[lbi].insts[lii].kind else {
        return None;
    };
    let exit = if *target == header_label {
        *els
    } else {
        *target
    };

    let static_count = {
        // reuse the streaming pass's logic through the public helper
        super::streaming::static_trip_count_public(la, &latch)
    };
    Some(MapPlan {
        inputs,
        op,
        out_region,
        out_off,
        latch,
        static_count,
        tail_cmp: latch.cmp,
        bound: latch.bound,
        exit,
    })
}

fn new_int(func: &mut Function, pre: Label, src: RExpr) -> Reg {
    let r = func.new_vreg(RegClass::Int);
    insert_before_jump(func, pre, InstKind::Assign { dst: r, src });
    r
}

fn emit_region_base(func: &mut Function, pre: Label, region: Region, off: i64, iv: Reg) -> Operand {
    let base = func.new_vreg(RegClass::Int);
    match region {
        Region::Global(sym) => insert_before_jump(
            func,
            pre,
            InstKind::LoadAddr {
                dst: base,
                sym,
                disp: off,
            },
        ),
        Region::Reg(r) => insert_before_jump(
            func,
            pre,
            InstKind::Assign {
                dst: base,
                src: RExpr::Bin(BinOp::Add, r.into(), Operand::Imm(off)),
            },
        ),
        Region::Unknown => unreachable!("unknown regions rejected"),
    }
    let addr = func.new_vreg(RegClass::Int);
    insert_before_jump(
        func,
        pre,
        InstKind::Assign {
            dst: addr,
            src: RExpr::Dual {
                inner: BinOp::Shl,
                a: iv.into(),
                b: Operand::Imm(3),
                outer: BinOp::Add,
                c: base.into(),
            },
        },
    );
    Operand::Reg(addr)
}

fn insert_before_jump(func: &mut Function, block: Label, kind: InstKind) {
    let id = func.new_inst_id();
    let b = func.block_mut(block);
    let at = b.insts.len().saturating_sub(1);
    b.insts.insert(at, Inst { id, kind });
}
