//! The Recurrence Detection and Optimization Algorithm (paper Steps 1–4).
//!
//! For each innermost loop the pass builds the memory-reference partitions
//! of [`crate::partition`], identifies read/write pairs "where a read
//! fetches the value written on a previous iteration" (Step 4a), and then:
//!
//! * keeps the written value in a register at the write (Step 4b),
//! * replaces the paired loads with register references (Step 4b),
//! * emits the shift chain `h[d] := h[d-1]` at the top of the loop
//!   (Step 4c, "if the order of the recurrence is greater than 1, it is
//!   important to emit the copies in the proper order"),
//! * builds a loop preheader performing the initial reads (Step 4d).
//!
//! The transformation runs on the *generic* RTL form, which is what makes
//! it "largely machine-independent"; only ~30–50 lines (the replacement of
//! memory references with register references) would differ per target, and
//! here they are shared by both the WM and scalar backends.

use wm_ir::{Function, Inst, InstKind, MemRef, Operand, RExpr, Reg, RegClass, Width};

use crate::affine::{LoopAnalysis, Region};
use crate::cfg::{ensure_preheader, natural_loops, Dominators};
use crate::partition::{build_partitions, AliasModel};

/// What the pass did, for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecurrenceReport {
    /// Loops in which at least one recurrence was optimized.
    pub loops_transformed: usize,
    /// Loads deleted and replaced by register references.
    pub loads_eliminated: usize,
    /// Highest recurrence degree handled.
    pub max_degree: i64,
}

/// Run the recurrence optimization on every innermost loop of `func`.
///
/// `max_degree` bounds the register cost: a degree-`d` recurrence needs
/// `d + 1` registers ("in general, you need one more register than the
/// degree of the recurrence"); partitions needing more are left alone.
pub fn optimize_recurrences(
    func: &mut Function,
    alias: AliasModel,
    max_degree: i64,
) -> RecurrenceReport {
    let mut report = RecurrenceReport::default();
    // Loop discovery is repeated after each transformed loop because the
    // preheader insertion renumbers blocks.
    let mut visited_headers: Vec<wm_ir::Label> = Vec::new();
    loop {
        let dom = Dominators::compute(func);
        let loops = natural_loops(func, &dom);
        let candidate = loops.iter().find(|lp| {
            lp.is_innermost(&loops) && !visited_headers.contains(&func.blocks[lp.header].label)
        });
        let Some(lp) = candidate else { break };
        visited_headers.push(func.blocks[lp.header].label);
        let lp = lp.clone();
        // A call inside the loop may store to any partition; leave such
        // loops alone.
        let has_call = lp.blocks.iter().any(|&bi| {
            func.blocks[bi]
                .insts
                .iter()
                .any(|i| matches!(i.kind, InstKind::Call { .. }))
        });
        if has_call {
            continue;
        }
        let plans = {
            let la = LoopAnalysis::new(func, &lp, &dom);
            let parts = build_partitions(&la, alias);
            parts
                .partitions
                .iter()
                .filter_map(|p| plan_partition(&la, p, max_degree))
                .collect::<Vec<Plan>>()
        };
        if plans.is_empty() {
            continue;
        }
        for plan in plans {
            report.loads_eliminated += plan.reads.len();
            report.max_degree = report.max_degree.max(plan.degree);
            apply_plan(func, &lp, plan);
        }
        report.loops_transformed += 1;
    }
    report
}

/// A planned transformation for one partition (no registers allocated yet —
/// planning only borrows the function).
#[derive(Debug)]
struct Plan {
    /// The write instruction (by stable id — other plans' insertions in the
    /// same loop shift raw positions).
    write: wm_ir::InstId,
    /// Paired reads: `(id, distance)`.
    reads: Vec<(wm_ir::InstId, i64)>,
    /// Recurrence degree (max distance).
    degree: i64,
    /// Access width (determines the holding-register class).
    width: Width,
    /// Region, IV and coefficients for the initial preheader loads.
    region: Region,
    iv: Reg,
    cee: i64,
    stride: i64,
    /// The write's `dee` (offset from region base).
    w_off: i64,
}

fn plan_partition(
    la: &LoopAnalysis<'_>,
    p: &crate::partition::MemPartition,
    max_degree: i64,
) -> Option<Plan> {
    if !p.safe {
        return None;
    }
    let pairs = p.recurrence_pairs();
    if pairs.is_empty() {
        return None;
    }
    // Conservative scope: exactly one write in the partition.
    let writes: Vec<usize> = p
        .refs
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_load)
        .map(|(i, _)| i)
        .collect();
    if writes.len() != 1 {
        return None;
    }
    let wi = writes[0];
    let wref = &p.refs[wi];
    // The write must execute every iteration for the holding registers to
    // stay in sync.
    if !la
        .lp
        .latches
        .iter()
        .all(|&l| la.dom.dominates(wref.pos.0, l))
    {
        return None;
    }
    // Only generic-form references are transformed here.
    if !matches!(
        la.func.blocks[wref.pos.0].insts[wref.pos.1].kind,
        InstKind::GStore { .. }
    ) {
        return None;
    }
    let degree = pairs.iter().map(|p| p.distance).max().unwrap();
    if degree > max_degree {
        return None;
    }
    // The preheader loads need a power-of-two coefficient to form a scaled
    // address.
    if p.cee <= 0 || !(p.cee as u64).is_power_of_two() {
        return None;
    }
    if p.region == Region::Unknown {
        return None;
    }
    // Preheader priming loads do not materialize invariant-term addresses.
    if p.refs
        .iter()
        .any(|r| r.affine.as_ref().map(|a| a.inv.is_some()).unwrap_or(true))
    {
        return None;
    }
    let mut reads = Vec::new();
    for pair in &pairs {
        if pair.write != wi {
            return None;
        }
        let rref = &p.refs[pair.read];
        if !matches!(
            la.func.blocks[rref.pos.0].insts[rref.pos.1].kind,
            InstKind::GLoad { .. }
        ) {
            return None;
        }
        reads.push((rref.id, pair.distance));
    }
    Some(Plan {
        write: wref.id,
        reads,
        degree,
        width: wref.width,
        region: p.region,
        iv: p.iv.expect("safe partition has an IV"),
        cee: p.cee,
        stride: p.stride,
        w_off: wref.affine.as_ref().expect("safe implies affine").off,
    })
}

/// Locate an instruction by its stable id.
fn find_inst(func: &Function, id: wm_ir::InstId) -> (usize, usize) {
    for (bi, block) in func.blocks.iter().enumerate() {
        for (ii, inst) in block.insts.iter().enumerate() {
            if inst.id == id {
                return (bi, ii);
            }
        }
    }
    unreachable!("instruction {id} vanished during the recurrence transform")
}

fn apply_plan(func: &mut Function, lp: &crate::cfg::Loop, plan: Plan) {
    let header_label = func.blocks[lp.header].label;
    let class = if plan.width == Width::D8 {
        RegClass::Flt
    } else {
        RegClass::Int
    };
    // h[0] holds the value written this iteration; h[d] the value written d
    // iterations ago.
    let holds: Vec<Reg> = (0..=plan.degree).map(|_| func.new_vreg(class)).collect();

    // Step 4b (write side): before the write, copy the stored value into
    // h[0], and store from h[0]. Instructions are found by id: earlier
    // plans' insertions shift raw positions.
    {
        let (bi, ii) = find_inst(func, plan.write);
        let h0 = holds[0];
        let (src, mem) = match &func.blocks[bi].insts[ii].kind {
            InstKind::GStore { src, mem } => (*src, mem.clone()),
            other => unreachable!("planned write is a store: {other:?}"),
        };
        let copy_id = func.new_inst_id();
        func.blocks[bi].insts[ii].kind = InstKind::GStore {
            src: Operand::Reg(h0),
            mem,
        };
        func.blocks[bi].insts.insert(
            ii,
            Inst {
                id: copy_id,
                kind: InstKind::Assign {
                    dst: h0,
                    src: RExpr::Op(src),
                },
            },
        );
    }
    // Step 4b (read side): replace the loads with register references.
    for &(id, d) in &plan.reads {
        let (bi, ii) = find_inst(func, id);
        let dst = match &func.blocks[bi].insts[ii].kind {
            InstKind::GLoad { dst, .. } => *dst,
            other => unreachable!("planned read is a load: {other:?}"),
        };
        func.blocks[bi].insts[ii].kind = InstKind::Assign {
            dst,
            src: RExpr::Op(Operand::Reg(holds[d as usize])),
        };
    }
    // Step 4c: the copy chain at the top of the loop, highest degree first.
    // Inserting each copy at position 0 in ascending degree order leaves
    // the final order h[degree] := h[degree-1], …, h[1] := h[0].
    for d in 1..=plan.degree {
        let id = func.new_inst_id();
        let kind = InstKind::Assign {
            dst: holds[d as usize],
            src: RExpr::Op(Operand::Reg(holds[(d - 1) as usize])),
        };
        func.block_mut(header_label)
            .insts
            .insert(0, Inst { id, kind });
    }
    // Step 4d: preheader with the initial reads. The IV register still
    // holds its initial value there, so it serves as the index directly.
    let pre = ensure_preheader(func, lp);
    let scale = plan.cee.trailing_zeros() as u8;
    let mut at = func.block(pre).insts.len() - 1; // before the jump
    #[allow(clippy::explicit_counter_loop)] // `at` tracks our own insertions
    for d in 1..=plan.degree {
        let disp = plan.w_off - d * plan.stride;
        let mem = match plan.region {
            Region::Global(sym) => MemRef {
                sym: Some(sym),
                base: None,
                index: Some((plan.iv, scale)),
                disp,
                width: plan.width,
                auto: wm_ir::AutoMode::None,
            },
            Region::Reg(base) => MemRef {
                sym: None,
                base: Some(base),
                index: Some((plan.iv, scale)),
                disp,
                width: plan.width,
                auto: wm_ir::AutoMode::None,
            },
            Region::Unknown => unreachable!("planned regions are known"),
        };
        let id = func.new_inst_id();
        func.block_mut(pre).insts.insert(
            at,
            Inst {
                id,
                kind: InstKind::GLoad {
                    dst: holds[(d - 1) as usize],
                    mem,
                },
            },
        );
        at += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str, name: &str) -> Function {
        let m = wm_frontend::compile(src).unwrap();
        m.function_named(name).unwrap().clone()
    }

    const LOOP5: &str = r"
        double x[1000]; double y[1000]; double z[1000];
        void loop5(int n) {
            int i;
            for (i = 2; i < n; i++)
                x[i] = z[i] * (y[i] - x[i-1]);
        }
    ";

    fn count_mem(f: &Function, lp_blocks: &std::collections::BTreeSet<usize>) -> usize {
        lp_blocks
            .iter()
            .map(|&bi| {
                f.blocks[bi]
                    .insts
                    .iter()
                    .filter(|i| i.kind.mem_access().is_some())
                    .count()
            })
            .sum()
    }

    #[test]
    fn livermore5_loses_one_load() {
        let mut f = compile(LOOP5, "loop5");
        let report = optimize_recurrences(&mut f, AliasModel::Conservative, 4);
        assert_eq!(report.loops_transformed, 1);
        assert_eq!(report.loads_eliminated, 1);
        assert_eq!(report.max_degree, 1);
        // "the major difference ... is that there are now only three memory
        // references in the loop instead of four"
        let dom = Dominators::compute(&f);
        let loops = natural_loops(&f, &dom);
        assert_eq!(loops.len(), 1);
        assert_eq!(count_mem(&f, &loops[0].blocks), 3);
        // the preheader performs the initial read of x[1]
        let preds = f.predecessors();
        let outside: Vec<usize> = preds[loops[0].header]
            .iter()
            .copied()
            .filter(|p| !loops[0].contains(*p))
            .collect();
        assert_eq!(outside.len(), 1);
        let pre = &f.blocks[outside[0]];
        let init_loads: Vec<&Inst> = pre
            .insts
            .iter()
            .filter(|i| matches!(i.kind, InstKind::GLoad { .. }))
            .collect();
        assert_eq!(init_loads.len(), 1);
        match &init_loads[0].kind {
            InstKind::GLoad { mem, .. } => {
                // x + 8*i0 - 8 with i0 = 2 ⇒ disp -8, index (i,3)
                assert_eq!(mem.disp, -8);
                assert!(mem.index.is_some());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn degree_two_needs_three_registers_and_two_initial_loads() {
        let mut f = compile(
            r"
            double a[100];
            void fib(int n) {
                int i;
                for (i = 2; i < n; i++)
                    a[i] = a[i-1] + a[i-2];
            }
        ",
            "fib",
        );
        let report = optimize_recurrences(&mut f, AliasModel::Conservative, 4);
        assert_eq!(report.loads_eliminated, 2);
        assert_eq!(report.max_degree, 2);
        // zero loads remain in the loop; two initial loads in the preheader
        let dom = Dominators::compute(&f);
        let loops = natural_loops(&f, &dom);
        let loads_in_loop: usize = loops[0]
            .blocks
            .iter()
            .map(|&bi| {
                f.blocks[bi]
                    .insts
                    .iter()
                    .filter(|i| matches!(i.kind, InstKind::GLoad { .. }))
                    .count()
            })
            .sum();
        assert_eq!(loads_in_loop, 0);
        // header starts with the ordered copy chain h2 := h1 ; h1 := h0
        let header = &f.blocks[loops[0].header];
        let copies: Vec<(Reg, Reg)> = header
            .insts
            .iter()
            .take(2)
            .filter_map(|i| match &i.kind {
                InstKind::Assign {
                    dst,
                    src: RExpr::Op(Operand::Reg(s)),
                } => Some((*dst, *s)),
                _ => None,
            })
            .collect();
        assert_eq!(copies.len(), 2);
        // first copy's source is the second copy's destination (h2:=h1 then h1:=h0)
        assert_eq!(copies[0].1, copies[1].0);
    }

    #[test]
    fn degree_above_limit_is_skipped() {
        let mut f = compile(
            r"
            double a[100];
            void f(int n) {
                int i;
                for (i = 8; i < n; i++)
                    a[i] = a[i-8];
            }
        ",
            "f",
        );
        let report = optimize_recurrences(&mut f, AliasModel::Conservative, 4);
        assert_eq!(report.loads_eliminated, 0);
    }

    #[test]
    fn aliased_pointer_loops_are_left_alone() {
        const SRC: &str = r"
            double x[100];
            void f(double *p, int n) {
                int i;
                for (i = 1; i < n; i++)
                    x[i] = x[i-1] + p[i];
            }
        ";
        let mut f = compile(SRC, "f");
        // conservatively, p[i] may alias x: no transformation
        let report = optimize_recurrences(&mut f, AliasModel::Conservative, 4);
        assert_eq!(report.loads_eliminated, 0);
        // under no-alias the recurrence on x is optimized
        let mut f2 = compile(SRC, "f");
        let report = optimize_recurrences(&mut f2, AliasModel::NoAlias, 4);
        assert_eq!(report.loads_eliminated, 1);
    }

    #[test]
    fn conditional_write_is_not_transformed() {
        let mut f = compile(
            r"
            double a[100];
            void f(int n) {
                int i;
                for (i = 1; i < n; i++)
                    if (a[i-1] > 0.0)
                        a[i] = a[i-1] * 0.5;
            }
        ",
            "f",
        );
        let report = optimize_recurrences(&mut f, AliasModel::Conservative, 4);
        assert_eq!(
            report.loads_eliminated, 0,
            "write does not dominate the latch"
        );
    }

    #[test]
    fn transformed_code_still_has_the_store() {
        let mut f = compile(LOOP5, "loop5");
        optimize_recurrences(&mut f, AliasModel::Conservative, 4);
        let stores = f
            .insts()
            .filter(|i| matches!(i.kind, InstKind::GStore { .. }))
            .count();
        assert_eq!(stores, 1);
        // the store's source is now a register (h0)
        assert!(f.insts().any(|i| matches!(
            &i.kind,
            InstKind::GStore {
                src: Operand::Reg(r),
                ..
            } if r.is_virt()
        )));
    }

    #[test]
    fn integer_recurrences_use_integer_holding_registers() {
        let mut f = compile(
            r"
            int a[100];
            void f(int n) {
                int i;
                for (i = 1; i < n; i++)
                    a[i] = a[i-1] + 1;
            }
        ",
            "f",
        );
        let report = optimize_recurrences(&mut f, AliasModel::Conservative, 4);
        assert_eq!(report.loads_eliminated, 1);
        // the store source register must be an integer vreg
        let src = f
            .insts()
            .find_map(|i| match &i.kind {
                InstKind::GStore {
                    src: Operand::Reg(r),
                    ..
                } => Some(*r),
                _ => None,
            })
            .unwrap();
        assert_eq!(src.class, RegClass::Int);
    }
}
