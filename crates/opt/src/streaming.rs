//! The Streaming Optimization Algorithm (paper Steps 1–3).
//!
//! Runs on WM-expanded code (`WLoad`/`WStore` plus FIFO dequeues/enqueues),
//! using the same partition information as the recurrence pass:
//!
//! 1. determine the trip count (`loop_count`), skipping loops of three or
//!    fewer iterations;
//! 2. for every reference in every safe partition: check that no memory
//!    recurrence remains, compute the stride (`cee` × loop increment),
//!    check the reference executes every iteration (its block dominates the
//!    latches), allocate a FIFO register, emit the stream instructions in
//!    the preheader and rewrite the loop body;
//! 3. replace the loop bottom test by a stream-termination jump when the
//!    count is known, insert stream-stop instructions at the exits when it
//!    is not, and delete the induction variable when it becomes dead.

use std::collections::HashMap;

use wm_ir::{
    BinOp, CmpOp, DataFifo, Function, GlobalKind, Inst, InstKind, Label, MemAccess, Module,
    Operand, RExpr, Reg, RegClass, SymId, Width,
};

use crate::affine::{analyze_latch, LatchInfo, LoopAnalysis, Region};
use crate::cfg::{ensure_preheader, natural_loops, split_edge, Dominators};
use crate::liveness::Liveness;
use crate::partition::{build_partitions_excluding, AliasModel};

/// Byte extents of a module's data globals, for the over-fetch analysis.
///
/// A stream that would touch addresses outside its base global is not a
/// pure optimization any more: on the simulated machine the loader places
/// guard red-zones after every global, so a prefetch past the end faults
/// (eagerly for scalar code, deferred/poisoned for streams). The streaming
/// pass consults this map to keep such references scalar unless the user
/// opts into speculation.
#[derive(Debug, Clone, Default)]
pub struct GlobalExtents {
    sizes: HashMap<SymId, i64>,
}

impl GlobalExtents {
    /// No extent information: every reference is assumed in bounds (the
    /// pre-analysis behavior).
    pub fn empty() -> GlobalExtents {
        GlobalExtents::default()
    }

    /// Extents of every data global in `module`.
    pub fn of_module(module: &Module) -> GlobalExtents {
        let sizes = module
            .globals
            .iter()
            .enumerate()
            .filter_map(|(i, g)| match g.kind {
                GlobalKind::Data { size, .. } => Some((SymId(i as u32), size as i64)),
                _ => None,
            })
            .collect();
        GlobalExtents { sizes }
    }

    /// The extent of `sym` in bytes, when known.
    pub fn get(&self, sym: SymId) -> Option<i64> {
        self.sizes.get(&sym).copied()
    }
}

/// What the pass did, for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamingReport {
    /// Loops in which at least one stream was created.
    pub loops_streamed: usize,
    /// Stream-in instructions created.
    pub streams_in: usize,
    /// Stream-out instructions created.
    pub streams_out: usize,
    /// Streams with unknown (unbounded) trip counts.
    pub infinite: usize,
    /// Loop bottom tests replaced by stream-termination jumps.
    pub tests_replaced: usize,
    /// Induction-variable increments deleted (step j).
    pub ivs_deleted: usize,
    /// In-streams kept scalar because they could fetch past their global.
    pub overfetch_degraded: usize,
    /// Over-fetching in-streams kept anyway under speculative streaming
    /// (the machine's deferred-fault semantics poison the extra entries).
    pub overfetch_speculated: usize,
    /// Gather descriptors created (an affine index stream fused with the
    /// data load it feeds).
    pub gathers: usize,
    /// Scatter descriptors created (the store-side dual).
    pub scatters: usize,
}

/// A planned stream for one memory reference.
#[derive(Debug, Clone)]
struct StreamPlan {
    /// Position of the `WLoad`/`WStore`.
    pos: (usize, usize),
    is_load: bool,
    fifo: DataFifo,
    region: Region,
    /// `dee`: offset from region base.
    off: i64,
    /// The paper's `cee`: bytes per unit of the induction variable.
    cee: i64,
    /// Loop-invariant address term `reg * mult` (a matrix row base).
    inv: Option<(Reg, i64)>,
    stride: i64,
    /// Register step for symbolic-stride loops (stride = cee × step reg).
    sym_step: Option<Reg>,
    width: wm_ir::Width,
    iv: Reg,
}

/// An index-fed (indirect) reference recognized in the loop: a data access
/// whose address is `base + (idx << shift)` where `idx` is the value an
/// adjacent dequeue pulls out of an affine *index* load. The index load,
/// its dequeue and the data access fuse into one `StreamGather` /
/// `StreamScatter` descriptor; the SCU then fetches the index stream
/// itself and issues the data references, so the loop body keeps only the
/// data-side FIFO transfer.
#[derive(Debug, Clone)]
struct IndirectRef {
    /// The data `WLoad`/`WStore`.
    mem_pos: (usize, usize),
    is_load: bool,
    /// Register class of the gathered/scattered data.
    class: RegClass,
    /// Data access width.
    width: Width,
    /// Loop-invariant base of `base + (idx << shift)`.
    base: Reg,
    shift: u8,
    /// The dequeue defining the index register.
    idx_def: (usize, usize),
    /// The affine index load feeding that dequeue.
    idx_load: (usize, usize),
    /// Scatter only: conservative byte extent of the scattered global from
    /// `base` (the machine orders younger reads around `[base, base+span)`
    /// because the store addresses are unknown until their indices arrive).
    span: i64,
}

/// Decompose a WM address expression into candidate `(index, shift, base)`
/// index-fed forms. The plain-add form is commutative, so both register
/// assignments are returned; the caller keeps the one whose index register
/// is actually a FIFO-dequeued value.
fn indirect_addr_forms(addr: &RExpr) -> Vec<(Reg, u8, Reg)> {
    match addr {
        RExpr::Dual {
            inner: BinOp::Shl,
            a: Operand::Reg(x),
            b: Operand::Imm(sh),
            outer: BinOp::Add,
            c: Operand::Reg(b),
        } if (0..=3).contains(sh) => vec![(*x, *sh as u8, *b)],
        RExpr::Bin(BinOp::Add, Operand::Reg(a), Operand::Reg(b)) => {
            vec![(*a, 0, *b), (*b, 0, *a)]
        }
        _ => Vec::new(),
    }
}

/// The affine identity of an indirect reference's base register: the
/// global (or root pointer) it addresses, traced through derived address
/// arithmetic. `Region::Unknown` when the base cannot be resolved.
fn base_region(la: &LoopAnalysis<'_>, base: Reg, at: (usize, usize)) -> Region {
    la.eval_expr(&RExpr::Op(Operand::Reg(base)), at, 8)
        .map_or(Region::Unknown, |a| a.region)
}

/// Structural recognition of index-fed references (no alias reasoning
/// yet): for every `WLoad`/`WStore` with a `base + (idx << shift)`
/// address, check that `idx` has exactly one definition — a dequeue paired
/// with an integer `WLoad` inside the loop — and exactly one use (the data
/// address), and that `base` is loop-invariant. A scatter additionally
/// needs its base global's extent, which becomes the descriptor's
/// conservative ordering span.
fn find_indirect_refs(la: &LoopAnalysis<'_>, extents: &GlobalExtents) -> Vec<IndirectRef> {
    let func = la.func;
    let lp = la.lp;
    let mut out: Vec<IndirectRef> = Vec::new();
    for &bi in &lp.blocks {
        for ii in 0..func.blocks[bi].insts.len() {
            let (addr, width, class, is_load) = match &func.blocks[bi].insts[ii].kind {
                InstKind::WLoad { fifo, addr, width } if fifo.index == 0 => {
                    if paired_dequeue(func, (bi, ii), fifo.class).is_none() {
                        continue;
                    }
                    (addr, *width, fifo.class, true)
                }
                InstKind::WStore { unit, addr, width } => {
                    if paired_enqueue(func, (bi, ii), *unit).is_none() {
                        continue;
                    }
                    (addr, *width, *unit, false)
                }
                _ => continue,
            };
            // Step 2c still applies: the data access must execute every
            // iteration, or the fused stream's element count is wrong.
            if !lp.latches.iter().all(|&l| la.dom.dominates(bi, l)) {
                continue;
            }
            for (idx, shift, base) in indirect_addr_forms(addr) {
                // the index register: one definition, inside the loop,
                // and it is the dequeue paired with an integer index load
                let Some(sites) = la.defs.get(&idx) else {
                    continue;
                };
                if sites.len() != 1 {
                    continue;
                }
                let (di, dj) = sites[0];
                if !lp.contains(di) || dj == 0 {
                    continue;
                }
                let fifo0 = Reg::phys(RegClass::Int, 0);
                let is_deq = matches!(
                    &func.blocks[di].insts[dj].kind,
                    InstKind::Assign { dst, src }
                        if *dst == idx && *src == RExpr::Op(Operand::Reg(fifo0))
                );
                let is_index_load = is_deq
                    && matches!(
                        &func.blocks[di].insts[dj - 1].kind,
                        InstKind::WLoad { fifo, .. } if *fifo == DataFifo::new(RegClass::Int, 0)
                    );
                if !is_index_load || (di, dj - 1) == (bi, ii) {
                    continue;
                }
                // the index value feeds the data address and nothing else
                let uses: usize = func
                    .insts()
                    .map(|i| i.kind.uses().iter().filter(|r| **r == idx).count())
                    .sum();
                if uses != 1 {
                    continue;
                }
                // base must be loop-invariant
                if la
                    .defs
                    .get(&base)
                    .is_some_and(|s| s.iter().any(|&(b2, _)| lp.contains(b2)))
                {
                    continue;
                }
                // a scatter's ordering span is its global's remaining extent
                let span = match base_region(la, base, (bi, ii)) {
                    Region::Global(sym) => {
                        let off = la
                            .eval_expr(&RExpr::Op(Operand::Reg(base)), (bi, ii), 8)
                            .map_or(0, |a| a.off);
                        extents.get(sym).map(|e| e - off).filter(|s| *s > 0)
                    }
                    _ => None,
                };
                if !is_load && span.is_none() {
                    continue;
                }
                out.push(IndirectRef {
                    mem_pos: (bi, ii),
                    is_load,
                    class,
                    width,
                    base,
                    shift,
                    idx_def: (di, dj),
                    idx_load: (di, dj - 1),
                    span: span.unwrap_or(0),
                });
                break;
            }
        }
    }
    out
}

/// Keep only the indirect references that are alias-safe to detach from
/// the loop's partitions.
///
/// A gather's SCU reads run *ahead* of the scalar program, so they must
/// provably never observe a store of the same loop: under
/// [`AliasModel::NoAlias`] distinct bases are disjoint, so only a store
/// resolving to the gather's own base (or a store with an unresolvable
/// address that is not itself a surviving scatter) rejects it; under
/// [`AliasModel::Conservative`] only store-free loops qualify. A scatter's
/// writes are unordered with respect to the rest of the loop, so it
/// requires `NoAlias` and that no *other* reference touches its base —
/// and, for output-FIFO exclusivity, that it is the only store of its
/// register class in the loop.
///
/// Rejecting one reference can invalidate another (a rejected scatter
/// becomes a plain opaque store), so the filter iterates to a fixed point.
fn filter_indirect_safety(
    la: &LoopAnalysis<'_>,
    alias: AliasModel,
    mut indirect: Vec<IndirectRef>,
) -> Vec<IndirectRef> {
    let func = la.func;
    let lp = la.lp;
    // census of every memory reference in the loop with its region
    let mut refs: Vec<((usize, usize), bool, RegClass, Region)> = Vec::new();
    for &bi in &lp.blocks {
        for (ii, inst) in func.blocks[bi].insts.iter().enumerate() {
            let Some(acc) = inst.kind.mem_access() else {
                continue;
            };
            let class = match &inst.kind {
                InstKind::WLoad { fifo, .. } => fifo.class,
                InstKind::WStore { unit, .. } => *unit,
                _ => RegClass::Int,
            };
            let region = match &acc {
                MemAccess::Generic { mem, .. } => la.eval_memref(mem, (bi, ii), 8),
                MemAccess::Wm { addr, .. } => la.eval_expr(addr, (bi, ii), 8),
            }
            .map_or(Region::Unknown, |a| a.region);
            refs.push(((bi, ii), acc.is_load(), class, region));
        }
    }
    loop {
        let surviving = indirect.clone();
        indirect.retain(|g| {
            let own = base_region(la, g.base, g.mem_pos);
            let my_identity = match own {
                Region::Unknown => Region::Reg(g.base),
                r => r,
            };
            if !g.is_load && alias != AliasModel::NoAlias {
                return false;
            }
            for &(pos, is_load, class, region) in &refs {
                if pos == g.mem_pos || pos == g.idx_load {
                    continue;
                }
                // output-FIFO exclusivity: one store per class
                if !g.is_load && !is_load && class == g.class {
                    return false;
                }
                // loads never conflict with a gather's reads
                if g.is_load && is_load {
                    continue;
                }
                // for a scatter every other reference matters; for a
                // gather only stores do (handled by the guard above)
                let other = surviving
                    .iter()
                    .find(|o| o.mem_pos == pos)
                    .map(|o| match base_region(la, o.base, o.mem_pos) {
                        Region::Unknown => Region::Reg(o.base),
                        r => r,
                    });
                let identity = other.unwrap_or(region);
                match alias {
                    AliasModel::Conservative => return false,
                    AliasModel::NoAlias => {
                        if identity == Region::Unknown || identity == my_identity {
                            return false;
                        }
                    }
                }
            }
            true
        });
        if indirect.len() == surviving.len() {
            return indirect;
        }
    }
}

/// Run the streaming optimization on every innermost loop of `func`.
///
/// `min_count` is the paper's Step 1 cutoff: statically-known trip counts
/// at or below 3 are not worth the stream setup. `extents` feeds the
/// over-fetch analysis (pass [`GlobalExtents::empty`] to skip it);
/// `speculative` keeps over-fetching in-streams, relying on the machine's
/// deferred-fault (poison) semantics instead of degrading to scalar code.
pub fn optimize_streams(
    func: &mut Function,
    alias: AliasModel,
    min_count: i64,
    extents: &GlobalExtents,
    speculative: bool,
) -> StreamingReport {
    let mut report = StreamingReport::default();
    let mut visited: Vec<Label> = Vec::new();
    loop {
        let dom = Dominators::compute(func);
        let loops = natural_loops(func, &dom);
        let candidate = loops
            .iter()
            .find(|lp| lp.is_innermost(&loops) && !visited.contains(&func.blocks[lp.header].label));
        let Some(lp) = candidate else { break };
        visited.push(func.blocks[lp.header].label);
        let nested = loops
            .iter()
            .any(|outer| outer.header != lp.header && outer.contains(lp.header));
        let lp = lp.clone();
        stream_one_loop(
            func,
            &lp,
            &dom,
            alias,
            min_count,
            nested,
            extents,
            speculative,
            &mut report,
        );
    }
    report
}

#[allow(clippy::too_many_arguments)]
fn stream_one_loop(
    func: &mut Function,
    lp: &crate::cfg::Loop,
    dom: &Dominators,
    alias: AliasModel,
    min_count: i64,
    nested: bool,
    extents: &GlobalExtents,
    speculative: bool,
    report: &mut StreamingReport,
) {
    // A called function would compete for the FIFOs and may touch any
    // memory; loops containing calls are not streamed.
    let has_call = lp.blocks.iter().any(|&bi| {
        func.blocks[bi]
            .insts
            .iter()
            .any(|i| matches!(i.kind, InstKind::Call { .. }))
    });
    if has_call {
        return;
    }
    // ---- analysis (immutable borrow scope) ----
    let (plans, indirect, latch, static_count) = {
        let la = LoopAnalysis::new(func, lp, dom);
        let latch = analyze_latch(&la);
        // Step 1: trip count. When it is statically known and small, do not
        // stream.
        let static_count = latch.as_ref().and_then(|l| static_trip_count(&la, l));
        if let Some(n) = static_count {
            if n <= min_count {
                return;
            }
        }
        // Recognize index-fed references *before* partitioning: a gather's
        // data address is not affine, so left in place it would poison
        // every partition of the loop. Detaching is only done when the
        // alias rules prove the SCU's run-ahead accesses safe, and fusion
        // needs a counted descriptor, so uncounted loops keep everything.
        let mut indirect = if latch.is_some() || static_count.is_some() {
            filter_indirect_safety(&la, alias, find_indirect_refs(&la, extents))
        } else {
            Vec::new()
        };
        let exclude: Vec<(usize, usize)> = indirect.iter().map(|g| g.mem_pos).collect();
        let parts = build_partitions_excluding(&la, alias, &exclude);
        // Candidate references, per partition.
        let mut cands: Vec<StreamPlan> = Vec::new();
        for p in &parts.partitions {
            if !p.safe {
                continue;
            }
            // Step 2a: no memory recurrences may remain.
            if !p.recurrence_pairs().is_empty() {
                continue;
            }
            if p.region == Region::Unknown {
                continue;
            }
            if p.cee <= 0 {
                continue;
            }
            // A symbolic-stride partition cannot prove recurrence distances:
            // only stream it when it is all-reads or all-writes.
            if p.sym_step.is_some() {
                let loads = p.refs.iter().filter(|r| r.is_load).count();
                if loads != 0 && loads != p.refs.len() {
                    continue;
                }
            }
            // An intra-iteration same-address pair where the read follows
            // the write (w[i] = …; … = w[i]) must see the new value; a
            // prefetching stream would deliver the stale one. Reads that
            // strictly precede the same-offset write (a[i] = a[i] + 1) are
            // fine: the prefetched value is the pre-write value the program
            // reads anyway.
            let raw_hazard = p.refs.iter().any(|w| {
                !w.is_load
                    && p.refs.iter().any(|r| {
                        r.is_load && r.roffset == w.roffset && {
                            let read_first = if r.pos.0 == w.pos.0 {
                                r.pos.1 < w.pos.1
                            } else {
                                la.dom.dominates(r.pos.0, w.pos.0)
                            };
                            !read_first
                        }
                    })
            });
            if raw_hazard {
                continue;
            }
            for r in &p.refs {
                // Step 2c: executed every time through the loop.
                if !lp.latches.iter().all(|&l| la.dom.dominates(r.pos.0, l)) {
                    continue;
                }
                // WM forms only, with the canonical adjacent FIFO transfer.
                let ok_form = match &func.blocks[r.pos.0].insts[r.pos.1].kind {
                    InstKind::WLoad { fifo, .. } => {
                        fifo.index == 0 && paired_dequeue(func, r.pos, fifo.class).is_some()
                    }
                    InstKind::WStore { unit, .. } => paired_enqueue(func, r.pos, *unit).is_some(),
                    _ => false,
                };
                if !ok_form {
                    continue;
                }
                let class = match &func.blocks[r.pos.0].insts[r.pos.1].kind {
                    InstKind::WLoad { fifo, .. } => fifo.class,
                    InstKind::WStore { unit, .. } => *unit,
                    _ => unreachable!(),
                };
                let affine = r.affine.as_ref().expect("safe");
                cands.push(StreamPlan {
                    pos: r.pos,
                    is_load: r.is_load,
                    fifo: DataFifo::new(class, 0), // assigned below
                    region: p.region,
                    off: affine.off,
                    cee: p.cee,
                    inv: affine.inv,
                    stride: p.stride,
                    sym_step: p.sym_step,
                    width: r.width,
                    iv: p.iv.expect("safe"),
                });
            }
        }
        if cands.is_empty() {
            return;
        }
        // Over-fetch analysis: an in-stream that may touch addresses
        // outside its base global (the SCU prefetches ahead of
        // consumption) is kept scalar unless speculation is requested.
        // This runs before FIFO allocation so a degraded reference counts
        // as a scalar load there and keeps input FIFO 0 reserved.
        cands.retain(
            |p| match overfetch(&la, latch.is_some(), static_count, p, extents) {
                Fetch::Safe => true,
                Fetch::Past if speculative => {
                    report.overfetch_speculated += 1;
                    true
                }
                Fetch::Past => {
                    report.overfetch_degraded += 1;
                    false
                }
            },
        );
        // An indirect reference fuses only when its index load survived as
        // a stream candidate; otherwise its data access stays scalar (and
        // must count as such in the FIFO accounting below).
        indirect.retain(|g| cands.iter().any(|c| c.pos == g.idx_load && c.is_load));
        let fused: Vec<(usize, usize)> = indirect
            .iter()
            .flat_map(|g| [g.mem_pos, g.idx_load])
            .collect();
        // A gather delivers *data* elements, so its FIFO belongs to the
        // data class, not the (integer) index class.
        for c in cands.iter_mut() {
            if let Some(g) = indirect.iter().find(|g| g.idx_load == c.pos && g.is_load) {
                c.fifo = DataFifo::new(g.class, 0);
            }
        }
        // Step 2e: FIFO allocation with resource accounting. Scalar
        // (non-streamed) loads of a class occupy input FIFO 0; scalar
        // stores occupy the output FIFO.
        let chosen = allocate_fifos(func, lp, cands, &indirect, &fused);
        // a fused index plan can still lose allocation to the collapse
        // rule; its data access then reverts to scalar alongside it
        indirect.retain(|g| chosen.iter().any(|c| c.pos == g.idx_load));
        (chosen, indirect, latch, static_count)
    };
    if plans.is_empty() {
        return;
    }
    let countable = latch.is_some();
    // An unbounded stream inside an enclosing loop is re-set-up on every
    // outer iteration for typically few elements (quicksort's partition
    // scans); the setup overhead makes that a loss, so skip it — which also
    // matches the paper's tiny Table II gain on quicksort.
    if !countable && nested {
        return;
    }

    // ---- transformation ----
    let pre = ensure_preheader(func, lp);
    // Shared trip-count computation (step 2d).
    let count_operand: Option<Operand> = match (&latch, static_count) {
        (_, Some(n)) => Some(Operand::Imm(n)),
        (Some(l), None) => Some(emit_trip_count(func, pre, l)),
        (None, _) => None,
    };
    if count_operand.is_none() {
        report.infinite += plans.len();
    }
    // The stream the termination jump will test — only it may load the
    // IFU's dispatch counter. A fused gather qualifies (it delivers
    // exactly `count` data elements); a fused scatter does not (its plan's
    // FIFO is the output side).
    let scatter_pos: Vec<(usize, usize)> = indirect
        .iter()
        .filter(|g| !g.is_load)
        .map(|g| g.idx_load)
        .collect();
    let jump_fifo = plans
        .iter()
        .find(|p| p.is_load && !scatter_pos.contains(&p.pos))
        .map(|p| p.fifo);

    // Rewrite each reference (steps 2g/2h).
    for plan in &plans {
        if let Some(g) = indirect.iter().find(|g| g.idx_load == plan.pos) {
            rewrite_indirect(
                func,
                pre,
                plan,
                g,
                count_operand,
                countable,
                jump_fifo,
                report,
            );
            continue;
        }
        // preheader: base address = region + off + cee*iv (the IV register
        // still holds its initial value in the preheader)
        let base = emit_base_address(func, pre, plan);
        let stride = emit_stride(func, pre, plan);
        let kind = if plan.is_load {
            report.streams_in += 1;
            InstKind::StreamIn {
                fifo: plan.fifo,
                base,
                count: count_operand,
                stride,
                width: plan.width,
                tested: countable && jump_fifo == Some(plan.fifo),
            }
        } else {
            report.streams_out += 1;
            InstKind::StreamOut {
                fifo: plan.fifo,
                base,
                count: count_operand,
                stride,
                width: plan.width,
            }
        };
        insert_before_jump(func, pre, kind);
        // body rewrite
        if plan.is_load {
            let (bi, ii) = plan.pos;
            let deq = paired_dequeue(func, plan.pos, plan.fifo.class).expect("candidate validated");
            func.blocks[bi].insts[ii].kind = InstKind::Nop;
            if plan.fifo.index == 1 {
                // retarget the dequeue from register 0 to register 1
                let old = Reg::phys(plan.fifo.class, 0);
                func.blocks[bi].insts[deq]
                    .kind
                    .substitute_use(old, Operand::Reg(plan.fifo.reg()));
            }
        } else {
            let (bi, ii) = plan.pos;
            func.blocks[bi].insts[ii].kind = InstKind::Nop;
        }
    }

    // Step i: replace the bottom test with a stream jump, or add stream
    // stops at the exits.
    if let (true, Some(jump_fifo)) = (countable, jump_fifo) {
        let l = latch.as_ref().unwrap();
        let header_label = func.blocks[lp.header].label;
        let (cbi, cii) = l.compare;
        let (bbi, bii) = l.branch;
        let (target, els) = match &func.blocks[bbi].insts[bii].kind {
            InstKind::Branch { target, els, .. } => {
                if *target == header_label {
                    (*target, *els)
                } else {
                    (*els, *target)
                }
            }
            _ => unreachable!("latch analyzed as a branch"),
        };
        func.blocks[cbi].insts[cii].kind = InstKind::Nop;
        func.blocks[bbi].insts[bii].kind = InstKind::BranchStream {
            fifo: jump_fifo,
            target,
            els,
        };
        report.tests_replaced += 1;

        // Step j: delete the IV increment when the IV is dead. The body
        // rewrite leaves the addressing code (`t := i << 3`, …) behind as
        // dead pure instructions; those must not keep the IV alive, so the
        // uses are counted on a scratch copy with dead code Nopped out
        // (without compaction, preserving instruction positions).
        let iv = l.iv;
        let cleaned = nop_dead_code(func);
        let uses_in_loop: usize = lp
            .blocks
            .iter()
            .map(|&bi| {
                cleaned.blocks[bi]
                    .insts
                    .iter()
                    .enumerate()
                    .filter(|(ii, inst)| (bi, *ii) != iv.def && inst.kind.uses().contains(&iv.reg))
                    .count()
            })
            .sum();
        if uses_in_loop == 0 {
            let lv = Liveness::compute(&cleaned);
            let live_at_exit = lp
                .exits
                .iter()
                .any(|&(_, to)| lv.live_in[to].contains(&iv.reg));
            if !live_at_exit {
                let (bi, ii) = iv.def;
                func.blocks[bi].insts[ii].kind = InstKind::Nop;
                report.ivs_deleted += 1;
            }
        }

        // Early exits (breaks, returns) leave the counted streams running:
        // stop them on every exit edge except the stream-exhaustion edge
        // itself. Early-exit branches are data-dependent, so consumption
        // has caught up by the time the stop executes; the jNI edge must
        // NOT get a stop because the IFU reaches it ahead of the consuming
        // unit (the stream self-terminates there).
        let latch_block = bbi;
        let exits: Vec<(usize, usize)> = lp
            .exits
            .iter()
            .copied()
            .filter(|&(from, _)| from != latch_block)
            .collect();
        for (from, to) in exits {
            let stub = split_edge(func, from, to);
            for plan in &plans {
                let id = func.new_inst_id();
                func.block_mut(stub).insts.insert(
                    0,
                    Inst {
                        id,
                        kind: InstKind::StreamStop { fifo: plan.fifo },
                    },
                );
            }
        }
    } else {
        // Unknown count: stream stops on every exit edge.
        // Collect exit edges afresh (indices may have shifted).
        let dom2 = Dominators::compute(func);
        let loops2 = natural_loops(func, &dom2);
        let header_label = func.blocks[lp.header].label;
        if let Some(cur) = loops2
            .iter()
            .find(|l| func.blocks[l.header].label == header_label)
        {
            let exits = cur.exits.clone();
            for (from, to) in exits {
                let stub = split_edge(func, from, to);
                for plan in &plans {
                    let id = func.new_inst_id();
                    func.block_mut(stub).insts.insert(
                        0,
                        Inst {
                            id,
                            kind: InstKind::StreamStop { fifo: plan.fifo },
                        },
                    );
                }
            }
        }
    }
    func.compact();
    report.loops_streamed += 1;
}

/// A copy of `func` with transitively dead pure instructions turned into
/// `Nop`, **without** compacting — instruction positions match the
/// original. Used by step j so addressing code orphaned by the body
/// rewrite does not count as a live use of the induction variable.
fn nop_dead_code(func: &Function) -> Function {
    let mut scratch = func.clone();
    loop {
        let lv = Liveness::compute(&scratch);
        let mut changed = false;
        for bi in 0..scratch.blocks.len() {
            let after = lv.live_after(&scratch, bi);
            for (ii, live) in after.iter().enumerate() {
                let inst = &scratch.blocks[bi].insts[ii];
                if inst.kind == InstKind::Nop || inst.kind.has_side_effects() {
                    continue;
                }
                let defs = inst.kind.defs();
                if !defs.is_empty() && defs.iter().all(|d| !live.contains(d)) {
                    scratch.blocks[bi].insts[ii].kind = InstKind::Nop;
                    changed = true;
                }
            }
        }
        if !changed {
            return scratch;
        }
    }
}

/// The dequeue paired with a WM load: the immediately following instruction
/// when it is exactly `v := fifo0` (the form target expansion emits).
/// Returns its instruction index.
fn paired_dequeue(func: &Function, pos: (usize, usize), class: RegClass) -> Option<usize> {
    let (bi, ii) = pos;
    let next = func.blocks[bi].insts.get(ii + 1)?;
    match &next.kind {
        InstKind::Assign { dst, src } => {
            let fifo0 = Reg::phys(class, 0);
            if *src == RExpr::Op(Operand::Reg(fifo0)) && !dst.is_fifo() {
                Some(ii + 1)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// The enqueue paired with a WM store: the immediately preceding
/// instruction when it writes the unit's output FIFO.
fn paired_enqueue(func: &Function, pos: (usize, usize), unit: RegClass) -> Option<usize> {
    let (bi, ii) = pos;
    if ii == 0 {
        return None;
    }
    let prev = &func.blocks[bi].insts[ii - 1];
    match &prev.kind {
        InstKind::Assign { dst, .. } if *dst == Reg::phys(unit, 0) => Some(ii - 1),
        _ => None,
    }
}

/// Emit one fused indirect descriptor and rewrite the loop body: the index
/// load, its dequeue and the data access all fold into the descriptor. For
/// a gather the data-side dequeue survives (retargeted to the allocated
/// FIFO); for a scatter the paired enqueue survives, feeding the SCU
/// through the unit's output FIFO.
#[allow(clippy::too_many_arguments)]
fn rewrite_indirect(
    func: &mut Function,
    pre: Label,
    plan: &StreamPlan,
    g: &IndirectRef,
    count_operand: Option<Operand>,
    countable: bool,
    jump_fifo: Option<DataFifo>,
    report: &mut StreamingReport,
) {
    // `plan` is the *index* load's stream plan: its affine base/stride
    // describe the index sequence the SCU fetches internally.
    let ibase = emit_base_address(func, pre, plan);
    let istride = emit_stride(func, pre, plan);
    let count = count_operand.expect("indirect fusion requires a counted loop");
    let kind = if g.is_load {
        report.gathers += 1;
        InstKind::StreamGather {
            fifo: plan.fifo,
            base: Operand::Reg(g.base),
            shift: g.shift,
            width: g.width,
            ibase,
            istride,
            iwidth: plan.width,
            count,
            tested: countable && jump_fifo == Some(plan.fifo),
        }
    } else {
        report.scatters += 1;
        InstKind::StreamScatter {
            fifo: plan.fifo,
            base: Operand::Reg(g.base),
            shift: g.shift,
            width: g.width,
            ibase,
            istride,
            iwidth: plan.width,
            count,
            span: g.span,
        }
    };
    insert_before_jump(func, pre, kind);
    func.blocks[plan.pos.0].insts[plan.pos.1].kind = InstKind::Nop;
    func.blocks[g.idx_def.0].insts[g.idx_def.1].kind = InstKind::Nop;
    if g.is_load {
        let deq = paired_dequeue(func, g.mem_pos, g.class).expect("candidate validated");
        func.blocks[g.mem_pos.0].insts[g.mem_pos.1].kind = InstKind::Nop;
        if plan.fifo.index == 1 {
            let old = Reg::phys(g.class, 0);
            func.blocks[g.mem_pos.0].insts[deq]
                .kind
                .substitute_use(old, Operand::Reg(plan.fifo.reg()));
        }
    } else {
        func.blocks[g.mem_pos.0].insts[g.mem_pos.1].kind = InstKind::Nop;
    }
}

/// Step 2e: assign FIFO registers, accounting for the scalar references
/// that remain in the loop. Input FIFO 0 of a class is only available when
/// no scalar load of that class survives; the single output FIFO of a class
/// is only available when no scalar store survives and at most one
/// out-stream wants it.
///
/// Indirect fusion rides along: positions in `fused` will be `Nop`ped by
/// the fusion rewrite and so do not count as scalar references, a
/// gather-paired index plan is allocated first (fusion must not be
/// stranded by a later plan taking its slot), and a scatter-paired index
/// plan skips input allocation entirely — its descriptor drains the
/// class's *output* FIFO, which the safety filter has already proven free.
fn allocate_fifos(
    func: &Function,
    lp: &crate::cfg::Loop,
    cands: Vec<StreamPlan>,
    indirect: &[IndirectRef],
    fused: &[(usize, usize)],
) -> Vec<StreamPlan> {
    let gather_pos: Vec<(usize, usize)> = indirect
        .iter()
        .filter(|g| g.is_load)
        .map(|g| g.idx_load)
        .collect();
    let scatter: Vec<&IndirectRef> = indirect.iter().filter(|g| !g.is_load).collect();
    let mut chosen: Vec<StreamPlan> = Vec::new();
    for class in [RegClass::Int, RegClass::Flt] {
        let mut loads: Vec<&StreamPlan> = cands
            .iter()
            .filter(|c| {
                c.is_load && c.fifo.class == class && !scatter.iter().any(|g| g.idx_load == c.pos)
            })
            .collect();
        loads.sort_by_key(|c| !gather_pos.contains(&c.pos));
        let stores: Vec<&StreamPlan> = cands
            .iter()
            .filter(|c| !c.is_load && c.fifo.class == class)
            .collect();
        // scalar refs of this class in the loop, besides the candidates
        // and the references indirect fusion removes
        let cand_positions: Vec<(usize, usize)> = cands.iter().map(|c| c.pos).collect();
        let mut scalar_loads = 0usize;
        let mut scalar_stores = 0usize;
        for &bi in &lp.blocks {
            for (ii, inst) in func.blocks[bi].insts.iter().enumerate() {
                if cand_positions.contains(&(bi, ii)) || fused.contains(&(bi, ii)) {
                    continue;
                }
                match &inst.kind {
                    InstKind::WLoad { fifo, .. } if fifo.class == class => scalar_loads += 1,
                    InstKind::WStore { unit, .. } if *unit == class => scalar_stores += 1,
                    _ => {}
                }
            }
        }
        // input FIFOs
        let mut avail_in: Vec<u8> = if scalar_loads > 0 {
            vec![1]
        } else {
            vec![0, 1]
        };
        let n_in = avail_in.len().min(loads.len());
        // If not every candidate load gets a FIFO, the leftovers stay
        // scalar and occupy input FIFO 0 — so only FIFO 1 is usable.
        if loads.len() > avail_in.len() && avail_in.contains(&0) {
            avail_in = vec![1];
        }
        for (plan, idx) in loads.into_iter().zip(avail_in.iter().take(n_in)) {
            let mut p = plan.clone();
            p.fifo = DataFifo::new(class, *idx);
            chosen.push(p);
        }
        // output FIFO: one affine out-stream, or one scatter (the safety
        // filter rejects a scatter sharing its class with any other store)
        if scalar_stores == 0 && stores.len() == 1 {
            let mut p = stores[0].clone();
            p.fifo = DataFifo::new(class, 0);
            chosen.push(p);
        }
        for g in scatter.iter().filter(|g| g.class == class) {
            if let Some(plan) = cands.iter().find(|c| c.pos == g.idx_load) {
                let mut p = plan.clone();
                p.fifo = DataFifo::new(class, 0);
                chosen.push(p);
            }
        }
    }
    chosen
}

/// The over-fetch analysis verdict for one planned stream.
enum Fetch {
    /// The stream's addresses provably stay inside the base global, or the
    /// stream only ever touches addresses the scalar program would.
    Safe,
    /// The stream may (or provably will) fetch past the global's extent.
    Past,
}

/// Compare a planned stream's address range against its base global's
/// extent.
///
/// * Out-streams are always [`Fetch::Safe`]: an SCU writes exactly one
///   element per value the program enqueues, so it cannot run ahead.
/// * Counted in-streams read exactly the addresses of the scalar loop, so
///   a fault is the *program's* fault either way; they are only flagged
///   when the whole range is statically computable and provably outside
///   `[0, extent)` — degradation then restores the scalar code's precise
///   per-access fault attribution.
/// * Unbounded in-streams genuinely over-fetch: the SCU runs up to a FIFO
///   depth of prefetch past the last element the program consumes, which
///   can cross the end of an exactly-sized global.
///
/// References whose base region has no known extent (pointers, missing
/// extent map) are left alone.
fn overfetch(
    la: &LoopAnalysis<'_>,
    countable: bool,
    static_count: Option<i64>,
    plan: &StreamPlan,
    extents: &GlobalExtents,
) -> Fetch {
    if !plan.is_load {
        return Fetch::Safe;
    }
    let Region::Global(sym) = plan.region else {
        return Fetch::Safe;
    };
    let Some(extent) = extents.get(sym) else {
        return Fetch::Safe;
    };
    if !countable {
        return Fetch::Past;
    }
    let (Some(n), None, None) = (static_count, plan.inv, plan.sym_step) else {
        return Fetch::Safe;
    };
    let Some(init) = static_iv_init(la, plan.iv) else {
        return Fetch::Safe;
    };
    let first = plan.off + plan.cee * init;
    let last = first + plan.stride * (n - 1);
    let lo = first.min(last);
    let hi = first.max(last) + plan.width.bytes();
    if lo < 0 || hi > extent {
        Fetch::Past
    } else {
        Fetch::Safe
    }
}

/// The IV's statically-known initial value: its sole definition outside
/// the loop, when that is a constant assignment.
fn static_iv_init(la: &LoopAnalysis<'_>, iv: Reg) -> Option<i64> {
    let sites = la.defs.get(&iv)?;
    let outside: Vec<(usize, usize)> = sites
        .iter()
        .copied()
        .filter(|(bi, _)| !la.lp.contains(*bi))
        .collect();
    if outside.len() != 1 {
        return None;
    }
    let (bi, ii) = outside[0];
    match &la.func.blocks[bi].insts[ii].kind {
        InstKind::Assign {
            src: RExpr::Op(Operand::Imm(v)),
            ..
        } => Some(*v),
        _ => None,
    }
}

/// Statically evaluate the trip count when both the bound and the IV's
/// initial value are compile-time constants.
fn static_trip_count(la: &LoopAnalysis<'_>, l: &LatchInfo) -> Option<i64> {
    let bound = l.bound.imm()?;
    let init = static_iv_init(la, l.iv.reg)?;
    if !l.iv.is_const_step() {
        return None;
    }
    trip_count_value(init, bound, l.iv.step, l.cmp)
}

/// Public wrapper over the private trip-count emitter, for the vectorizer.
pub(crate) fn emit_trip_count_public(func: &mut Function, pre: Label, l: &LatchInfo) -> Operand {
    emit_trip_count(func, pre, l)
}

/// Public wrapper over the private static-count analysis.
pub(crate) fn static_trip_count_public(la: &LoopAnalysis<'_>, l: &LatchInfo) -> Option<i64> {
    static_trip_count(la, l)
}

/// Closed-form trip count for `for (iv = init; …; iv += step)` with the
/// bottom test `iv cmp bound` evaluated after the increment, given the
/// guard has passed (at least one iteration executes).
pub fn trip_count_value(init: i64, bound: i64, step: i64, cmp: CmpOp) -> Option<i64> {
    let n = match cmp {
        CmpOp::Lt if step > 0 => (bound - init + step - 1).div_euclid(step),
        CmpOp::Le if step > 0 => (bound - init).div_euclid(step) + 1,
        CmpOp::Gt if step < 0 => (init - bound + (-step) - 1).div_euclid(-step),
        CmpOp::Ge if step < 0 => (init - bound).div_euclid(-step) + 1,
        CmpOp::Ne if step == 1 => bound - init,
        CmpOp::Ne if step == -1 => init - bound,
        _ => return None,
    };
    Some(n.max(1))
}

/// Emit preheader code computing the dynamic trip count into a register.
fn emit_trip_count(func: &mut Function, pre: Label, l: &LatchInfo) -> Operand {
    if let Some(step) = l.iv.step_reg {
        return emit_trip_count_symbolic(func, pre, l, step);
    }
    let iv = l.iv.reg;
    let step = l.iv.step;
    // diff = bound - iv   (or iv - bound for downward loops)
    let diff = func.new_vreg(RegClass::Int);
    let (a, b): (Operand, Operand) = if step > 0 {
        (l.bound, Operand::Reg(iv))
    } else {
        (Operand::Reg(iv), l.bound)
    };
    insert_before_jump(
        func,
        pre,
        InstKind::Assign {
            dst: diff,
            src: RExpr::Bin(BinOp::Sub, a, b),
        },
    );
    let mag = step.abs();
    let mut count = diff;
    match l.cmp {
        CmpOp::Lt | CmpOp::Gt => {
            if mag != 1 {
                // ceil(diff / mag) = (diff + mag - 1) / mag
                let t = func.new_vreg(RegClass::Int);
                insert_before_jump(
                    func,
                    pre,
                    InstKind::Assign {
                        dst: t,
                        src: RExpr::Bin(BinOp::Add, count.into(), Operand::Imm(mag - 1)),
                    },
                );
                let q = func.new_vreg(RegClass::Int);
                insert_before_jump(
                    func,
                    pre,
                    InstKind::Assign {
                        dst: q,
                        src: RExpr::Bin(BinOp::Div, t.into(), Operand::Imm(mag)),
                    },
                );
                count = q;
            }
        }
        CmpOp::Le | CmpOp::Ge => {
            let base = if mag != 1 {
                let q = func.new_vreg(RegClass::Int);
                insert_before_jump(
                    func,
                    pre,
                    InstKind::Assign {
                        dst: q,
                        src: RExpr::Bin(BinOp::Div, count.into(), Operand::Imm(mag)),
                    },
                );
                q
            } else {
                count
            };
            let p = func.new_vreg(RegClass::Int);
            insert_before_jump(
                func,
                pre,
                InstKind::Assign {
                    dst: p,
                    src: RExpr::Bin(BinOp::Add, base.into(), Operand::Imm(1)),
                },
            );
            count = p;
        }
        CmpOp::Ne => {}
        CmpOp::Eq => unreachable!("rejected by analyze_latch"),
    }
    Operand::Reg(count)
}

/// Trip count for an upward loop with a register step `s` (assumed
/// positive): `Lt` gives `(bound - iv + s - 1) / s`; `Le` adds one to
/// `(bound - iv) / s`.
fn emit_trip_count_symbolic(func: &mut Function, pre: Label, l: &LatchInfo, step: Reg) -> Operand {
    let iv = l.iv.reg;
    let diff = func.new_vreg(RegClass::Int);
    insert_before_jump(
        func,
        pre,
        InstKind::Assign {
            dst: diff,
            src: RExpr::Bin(BinOp::Sub, l.bound, Operand::Reg(iv)),
        },
    );
    match l.cmp {
        CmpOp::Lt => {
            let t = func.new_vreg(RegClass::Int);
            insert_before_jump(
                func,
                pre,
                InstKind::Assign {
                    dst: t,
                    src: RExpr::Dual {
                        inner: BinOp::Add,
                        a: diff.into(),
                        b: step.into(),
                        outer: BinOp::Sub,
                        c: Operand::Imm(1),
                    },
                },
            );
            let q = func.new_vreg(RegClass::Int);
            insert_before_jump(
                func,
                pre,
                InstKind::Assign {
                    dst: q,
                    src: RExpr::Bin(BinOp::Div, t.into(), step.into()),
                },
            );
            Operand::Reg(q)
        }
        CmpOp::Le => {
            let q = func.new_vreg(RegClass::Int);
            insert_before_jump(
                func,
                pre,
                InstKind::Assign {
                    dst: q,
                    src: RExpr::Bin(BinOp::Div, diff.into(), step.into()),
                },
            );
            let p = func.new_vreg(RegClass::Int);
            insert_before_jump(
                func,
                pre,
                InstKind::Assign {
                    dst: p,
                    src: RExpr::Bin(BinOp::Add, q.into(), Operand::Imm(1)),
                },
            );
            Operand::Reg(p)
        }
        other => unreachable!("symbolic latch only matches Lt/Le, got {other:?}"),
    }
}

/// Emit preheader code computing a stream's base address.
fn emit_base_address(func: &mut Function, pre: Label, plan: &StreamPlan) -> Operand {
    let base = func.new_vreg(RegClass::Int);
    match plan.region {
        Region::Global(sym) => {
            insert_before_jump(
                func,
                pre,
                InstKind::LoadAddr {
                    dst: base,
                    sym,
                    disp: plan.off,
                },
            );
        }
        Region::Reg(r) => {
            insert_before_jump(
                func,
                pre,
                InstKind::Assign {
                    dst: base,
                    src: RExpr::Bin(BinOp::Add, r.into(), Operand::Imm(plan.off)),
                },
            );
        }
        Region::Unknown => unreachable!("unknown regions are not streamed"),
    }
    // + inv.reg * inv.mult (an invariant row-base term)
    let base = match plan.inv {
        None => base,
        Some((reg, mult)) => {
            let t = func.new_vreg(RegClass::Int);
            let src = scaled_add(reg, mult, base.into());
            insert_before_jump(func, pre, InstKind::Assign { dst: t, src });
            t
        }
    };
    // + cee*iv (initial IV value read directly in the preheader)
    let addr = func.new_vreg(RegClass::Int);
    let src = scaled_add(plan.iv, plan.cee, base.into());
    insert_before_jump(func, pre, InstKind::Assign { dst: addr, src });
    Operand::Reg(addr)
}

/// `(reg * k) + c` as a single dual RTL, using a shift when `k` is a power
/// of two and a multiply otherwise.
fn scaled_add(reg: Reg, k: i64, c: Operand) -> RExpr {
    if k == 1 {
        RExpr::Bin(BinOp::Add, reg.into(), c)
    } else if k > 0 && (k as u64).is_power_of_two() {
        RExpr::Dual {
            inner: BinOp::Shl,
            a: reg.into(),
            b: Operand::Imm(k.trailing_zeros() as i64),
            outer: BinOp::Add,
            c,
        }
    } else {
        RExpr::Dual {
            inner: BinOp::Mul,
            a: reg.into(),
            b: Operand::Imm(k),
            outer: BinOp::Add,
            c,
        }
    }
}

/// The stride operand: a constant, or `step << log2(cee)` computed in the
/// preheader for symbolic-stride loops.
fn emit_stride(func: &mut Function, pre: Label, plan: &StreamPlan) -> Operand {
    match plan.sym_step {
        None => Operand::Imm(plan.stride),
        Some(step) => {
            if plan.cee == 1 {
                Operand::Reg(step)
            } else {
                let t = func.new_vreg(RegClass::Int);
                let op = if plan.cee > 0 && (plan.cee as u64).is_power_of_two() {
                    RExpr::Bin(
                        BinOp::Shl,
                        step.into(),
                        Operand::Imm(plan.cee.trailing_zeros() as i64),
                    )
                } else {
                    RExpr::Bin(BinOp::Mul, step.into(), Operand::Imm(plan.cee))
                };
                insert_before_jump(func, pre, InstKind::Assign { dst: t, src: op });
                Operand::Reg(t)
            }
        }
    }
}

fn insert_before_jump(func: &mut Function, block: Label, kind: InstKind) {
    let id = func.new_inst_id();
    let b = func.block_mut(block);
    let at = b.insts.len().saturating_sub(1);
    b.insts.insert(at, Inst { id, kind });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_count_closed_forms() {
        // for (i = 2; i < 10; i++) → 8 iterations
        assert_eq!(trip_count_value(2, 10, 1, CmpOp::Lt), Some(8));
        // for (i = 0; i <= 9; i++) → 10
        assert_eq!(trip_count_value(0, 9, 1, CmpOp::Le), Some(10));
        // for (i = 10; i > 0; i--) → 10
        assert_eq!(trip_count_value(10, 0, -1, CmpOp::Gt), Some(10));
        // for (i = 9; i >= 0; i--) → 10
        assert_eq!(trip_count_value(9, 0, -1, CmpOp::Ge), Some(10));
        // for (i = 0; i != 7; i++) → 7
        assert_eq!(trip_count_value(0, 7, 1, CmpOp::Ne), Some(7));
        // step 3: for (i = 0; i < 10; i += 3) → 4
        assert_eq!(trip_count_value(0, 10, 3, CmpOp::Lt), Some(4));
        // wrong-direction loops are rejected
        assert_eq!(trip_count_value(0, 10, -1, CmpOp::Lt), None);
    }
}
