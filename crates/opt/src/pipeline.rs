//! Phase drivers.
//!
//! The paper's optimizer "uses the same representation for all phases",
//! which "allows optimization phases to be reinvoked at any time" and
//! "largely eliminates phase ordering problems". These drivers re-invoke
//! the classical phases to a fixed point around the two headline passes.

use wm_ir::Function;

use crate::partition::AliasModel;
use crate::phases;
use crate::recurrence::{optimize_recurrences, RecurrenceReport};
use crate::streaming::{optimize_streams, GlobalExtents, StreamingReport};

/// Optimizer configuration. The individual switches exist so benchmarks can
/// compare code generated "with and without" a given optimization, as the
/// paper's Tables I and II do.
#[derive(Debug, Clone)]
pub struct OptOptions {
    /// Constant folding and algebraic simplification.
    pub constant_folding: bool,
    /// Copy and single-def constant propagation.
    pub copy_propagation: bool,
    /// Local common-subexpression elimination.
    pub cse: bool,
    /// Loop-invariant code motion.
    pub code_motion: bool,
    /// Dead-code elimination.
    pub dead_code: bool,
    /// Control-flow simplification (jump threading, block merging).
    pub cfg_simplify: bool,
    /// The recurrence detection and optimization algorithm (Table I).
    pub recurrence: bool,
    /// The streaming optimization algorithm (Table II); applies to the WM
    /// target only.
    pub streaming: bool,
    /// Dual-operation instruction combining (WM).
    pub dual_combine: bool,
    /// Strength reduction / auto-increment selection (scalar target).
    pub strength_reduction: bool,
    /// Vectorize elementwise map loops onto the VEU (off by default so the
    /// streaming measurements match the paper's; enable explicitly).
    pub vectorize: bool,
    /// VEU vector length N (must match `WmConfig::veu_length`).
    pub vector_length: i64,
    /// Aliasing assumption used when partitioning memory references.
    pub alias: AliasModel,
    /// Maximum recurrence degree to optimize (register budget).
    pub max_recurrence_degree: i64,
    /// Minimum statically-known trip count worth streaming (paper: > 3).
    pub stream_min_count: i64,
    /// Keep streams the over-fetch analysis flags as able to run past
    /// their base global, relying on the machine's deferred-fault
    /// (poison) semantics; off by default, which degrades them to scalar
    /// references.
    pub speculative_streams: bool,
    /// Run the tile-partitioning pass ([`crate::tile::partition_tiles`])
    /// when compiling for a multi-tile machine. A no-op at `tiles == 1`.
    pub partition: bool,
    /// Number of tiles the partitioning pass splits the entry function's
    /// hottest qualifying loop across (1 = single-core, no partitioning).
    pub tiles: usize,
    /// Optimal software pipelining of streamed inner loops via the
    /// difference-logic solver (`-O modulo`; off by default — it is a
    /// code-motion trade the paper's tables do not include).
    pub modulo: bool,
    /// Solver conflict budget per candidate initiation interval. The
    /// budget is deterministic (no wall-clock component), so compilations
    /// are reproducible on any host.
    pub modulo_budget: u64,
    /// Load-to-pop latency in cycles modelled by the modulo scheduler
    /// (matches the simulator's default memory latency).
    pub modulo_mem_latency: i64,
}

impl Default for OptOptions {
    fn default() -> OptOptions {
        OptOptions {
            constant_folding: true,
            copy_propagation: true,
            cse: true,
            code_motion: true,
            dead_code: true,
            cfg_simplify: true,
            recurrence: true,
            streaming: true,
            dual_combine: true,
            strength_reduction: true,
            vectorize: false,
            vector_length: 32,
            alias: AliasModel::Conservative,
            max_recurrence_degree: 4,
            stream_min_count: 3,
            speculative_streams: false,
            partition: true,
            tiles: 1,
            modulo: false,
            modulo_budget: 20_000,
            modulo_mem_latency: 6,
        }
    }
}

impl OptOptions {
    /// Everything enabled (the default).
    pub fn all() -> OptOptions {
        OptOptions::default()
    }

    /// Everything disabled: the front end's naive code passes through.
    pub fn none() -> OptOptions {
        OptOptions {
            constant_folding: false,
            copy_propagation: false,
            cse: false,
            code_motion: false,
            dead_code: false,
            cfg_simplify: false,
            recurrence: false,
            streaming: false,
            dual_combine: false,
            strength_reduction: false,
            ..OptOptions::default()
        }
    }

    /// Classical optimizations only — the baseline the paper compares
    /// against ("with and without recurrence detection enabled").
    pub fn without_recurrence(mut self) -> OptOptions {
        self.recurrence = false;
        self
    }

    /// Disable streaming — the Table II baseline.
    pub fn without_streaming(mut self) -> OptOptions {
        self.streaming = false;
        self
    }

    /// Assume distinct pointer bases do not alias.
    pub fn assume_noalias(mut self) -> OptOptions {
        self.alias = AliasModel::NoAlias;
        self
    }

    /// Enable VEU vectorization of map loops.
    pub fn with_vectorization(mut self) -> OptOptions {
        self.vectorize = true;
        self
    }

    /// Keep over-fetching streams, relying on deferred-fault semantics.
    pub fn with_speculative_streams(mut self) -> OptOptions {
        self.speculative_streams = true;
        self
    }

    /// Partition the entry function across `tiles` cores.
    pub fn with_tiles(mut self, tiles: usize) -> OptOptions {
        self.tiles = tiles;
        self
    }

    /// Disable the tile-partitioning pass (tiles still replicate the
    /// whole program and run it redundantly).
    pub fn without_partition(mut self) -> OptOptions {
        self.partition = false;
        self
    }

    /// Enable solver-based optimal software pipelining of inner loops.
    pub fn with_modulo(mut self) -> OptOptions {
        self.modulo = true;
        self
    }
}

/// What the pipeline did.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptStats {
    /// Recurrence-pass report.
    pub recurrence: RecurrenceReport,
    /// Streaming-pass report.
    pub streaming: StreamingReport,
    /// Vectorizer report.
    pub vector: crate::vectorize::VectorReport,
    /// Modulo-scheduling report.
    pub modulo: crate::modulo::ModuloReport,
    /// Cleanup fixpoint iterations used.
    pub iterations: usize,
}

const MAX_ROUNDS: usize = 12;

fn cleanup_round(func: &mut Function, opts: &OptOptions) -> bool {
    let mut changed = false;
    if opts.constant_folding {
        changed |= phases::fold_constants(func);
        changed |= phases::fold_constant_branches(func);
    }
    if opts.copy_propagation {
        changed |= phases::propagate_single_def_constants(func);
        changed |= phases::propagate_copies(func);
        changed |= phases::coalesce_copy_chains(func);
    }
    if opts.cse {
        changed |= phases::eliminate_common_subexpressions(func);
    }
    if opts.dead_code {
        changed |= phases::eliminate_dead_code(func);
    }
    if opts.cfg_simplify {
        changed |= phases::simplify_cfg(func);
    }
    changed
}

fn cleanup(func: &mut Function, opts: &OptOptions) -> usize {
    let mut rounds = 0;
    while rounds < MAX_ROUNDS && cleanup_round(func, opts) {
        rounds += 1;
    }
    rounds
}

/// Optimize a function in its *generic* (pre-expansion) form: classical
/// cleanups, loop-invariant code motion, then the recurrence algorithm
/// followed by more cleanup (the paper notes copy propagation finishes the
/// job after the recurrence transformation).
pub fn optimize_generic(func: &mut Function, opts: &OptOptions) -> OptStats {
    let mut stats = OptStats::default();
    stats.iterations += cleanup(func, opts);
    if opts.code_motion {
        phases::hoist_invariants(func);
        stats.iterations += cleanup(func, opts);
    }
    if opts.recurrence {
        stats.recurrence = optimize_recurrences(func, opts.alias, opts.max_recurrence_degree);
        stats.iterations += cleanup(func, opts);
    }
    stats
}

/// Optimize a function after WM target expansion: code motion over the
/// expanded form (hoisting `llh`/`sll` address formation), the streaming
/// algorithm, dual-operation combining, and final cleanup.
///
/// Without global-extent information the streaming pass skips its
/// over-fetch analysis; drivers that hold the whole [`wm_ir::Module`]
/// should call [`optimize_wm_with`] instead.
pub fn optimize_wm(func: &mut Function, opts: &OptOptions) -> OptStats {
    optimize_wm_with(func, opts, &GlobalExtents::empty())
}

/// [`optimize_wm`] with global extents for the over-fetch analysis.
pub fn optimize_wm_with(
    func: &mut Function,
    opts: &OptOptions,
    extents: &GlobalExtents,
) -> OptStats {
    let mut stats = OptStats::default();
    if opts.code_motion {
        phases::hoist_invariants(func);
    }
    stats.iterations += cleanup(func, opts);
    if opts.dead_code {
        phases::eliminate_dead_load_pairs(func);
    }
    if opts.vectorize {
        stats.vector = crate::vectorize::vectorize_maps(func, opts.alias, opts.vector_length);
        stats.iterations += cleanup(func, opts);
    }
    if opts.streaming {
        stats.streaming = optimize_streams(
            func,
            opts.alias,
            opts.stream_min_count,
            extents,
            opts.speculative_streams,
        );
        stats.iterations += cleanup(func, opts);
    }
    if opts.dual_combine {
        let mut rounds = 0;
        while rounds < MAX_ROUNDS && phases::combine_duals(func) {
            rounds += 1;
            if opts.dead_code {
                phases::eliminate_dead_code(func);
            }
        }
        stats.iterations += cleanup(func, opts);
    }
    // Modulo scheduling runs last: it must see the final body shape
    // (post-combining), and no later phase may reorder its kernels.
    if opts.modulo {
        stats.modulo =
            crate::modulo::modulo_schedule(func, opts.modulo_budget, opts.modulo_mem_latency);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_ir::InstKind;

    #[test]
    fn generic_pipeline_shrinks_livermore5() {
        let m = wm_frontend::compile(
            r"
            double x[1000]; double y[1000]; double z[1000];
            void loop5(int n) {
                int i;
                for (i = 2; i < n; i++)
                    x[i] = z[i] * (y[i] - x[i-1]);
            }
        ",
        )
        .unwrap();
        let mut f = m.function_named("loop5").unwrap().clone();
        let before = f.inst_count();
        let stats = optimize_generic(&mut f, &OptOptions::all());
        assert_eq!(stats.recurrence.loads_eliminated, 1);
        assert!(f.inst_count() <= before);
        // three memory references remain in total (preheader init load is
        // the 4th overall but the loop holds 3)
        let loads = f
            .insts()
            .filter(|i| matches!(i.kind, InstKind::GLoad { .. }))
            .count();
        assert_eq!(loads, 3, "z[i], y[i] in loop + x[1] initial");
    }

    #[test]
    fn disabled_pipeline_changes_nothing() {
        let m = wm_frontend::compile("int f(int a) { return a * 2 + 0; }").unwrap();
        let mut f = m.function_named("f").unwrap().clone();
        let before = f.clone();
        optimize_generic(&mut f, &OptOptions::none());
        assert_eq!(f, before);
    }

    #[test]
    fn option_builders() {
        let o = OptOptions::all().without_recurrence().assume_noalias();
        assert!(!o.recurrence);
        assert!(o.streaming);
        assert_eq!(o.alias, AliasModel::NoAlias);
        let o = OptOptions::all().without_streaming();
        assert!(!o.streaming);
        assert!(!o.modulo, "modulo scheduling is opt-in");
        let o = OptOptions::all().with_modulo();
        assert!(o.modulo);
        assert!(o.modulo_budget > 0);
    }
}
