//! Scalar-machine end-to-end tests, including the Table-I recurrence
//! comparison shape.

use wm_ir::Module;
use wm_machines::{MachineModel, ScalarMachine};
use wm_opt::{optimize_generic, OptOptions};
use wm_target::{allocate_registers, select_auto_increment, strength_reduce, TargetKind};

fn compile_scalar(src: &str, opts: &OptOptions) -> Module {
    let mut module = wm_frontend::compile(src).expect("compiles");
    for f in module.functions.iter_mut() {
        optimize_generic(f, opts);
        strength_reduce(f, opts.alias);
        select_auto_increment(f);
        allocate_registers(f, TargetKind::Scalar).expect("allocates");
    }
    module
}

fn run(src: &str, model: &MachineModel, opts: &OptOptions) -> wm_machines::ScalarResult {
    let m = compile_scalar(src, opts);
    ScalarMachine::run(&m, "main", &[], model).expect("runs")
}

const LIVERMORE5: &str = r"
    double x[2000]; double y[2000]; double z[2000];
    int main() {
        int i;
        for (i = 0; i < 2000; i++) {
            x[i] = i * 0.25; y[i] = 2.0 + i * 0.5; z[i] = 1.0 / (1.0 + i);
        }
        for (i = 2; i < 2000; i++)
            x[i] = z[i] * (y[i] - x[i-1]);
        return (int) (x[1999] * 1000.0);
    }
";

/// The same program with the kernel loop removed; subtracting its cycles
/// isolates the kernel, which is what Table I reports.
const LIVERMORE5_INIT_ONLY: &str = r"
    double x[2000]; double y[2000]; double z[2000];
    int main() {
        int i;
        for (i = 0; i < 2000; i++) {
            x[i] = i * 0.25; y[i] = 2.0 + i * 0.5; z[i] = 1.0 / (1.0 + i);
        }
        return (int) (x[1999] * 1000.0);
    }
";

/// Kernel-only cycles under `opts` on `model`.
fn kernel_cycles(model: &MachineModel, opts: &OptOptions) -> u64 {
    let full = run(LIVERMORE5, model, opts).cycles;
    let init = run(LIVERMORE5_INIT_ONLY, model, opts).cycles;
    full - init
}

#[test]
fn all_models_agree_on_results() {
    let mut expected = None;
    for model in MachineModel::table1_machines() {
        let r = run(LIVERMORE5, &model, &OptOptions::all().without_streaming());
        match expected {
            None => expected = Some(r.ret_int),
            Some(e) => assert_eq!(r.ret_int, e, "on {}", model.name),
        }
        assert!(r.cycles > 0);
    }
}

#[test]
fn recurrence_optimization_improves_every_machine() {
    let with = OptOptions::all().without_streaming();
    let without = OptOptions::all().without_streaming().without_recurrence();
    for model in MachineModel::table1_machines() {
        let a = run(LIVERMORE5, &model, &with);
        let b = run(LIVERMORE5, &model, &without);
        assert_eq!(a.ret_int, b.ret_int, "{}", model.name);
        let k_with = kernel_cycles(&model, &with);
        let k_without = kernel_cycles(&model, &without);
        assert!(
            k_with < k_without,
            "{}: {} !< {}",
            model.name,
            k_with,
            k_without
        );
        // best-case bound from the paper: about 25% (one of four refs)
        let gain = 100.0 * (k_without - k_with) as f64 / k_without as f64;
        assert!(
            gain < 26.0,
            "{}: gain {gain:.1}% exceeds the best case",
            model.name
        );
        assert!(
            gain > 2.0,
            "{}: gain {gain:.1}% suspiciously small",
            model.name
        );
    }
}

#[test]
fn vax_benefits_least() {
    let with = OptOptions::all().without_streaming();
    let without = OptOptions::all().without_streaming().without_recurrence();
    let mut gains = Vec::new();
    for model in MachineModel::table1_machines() {
        let k_with = kernel_cycles(&model, &with);
        let k_without = kernel_cycles(&model, &without);
        let gain = 100.0 * (k_without - k_with) as f64 / k_without as f64;
        gains.push((model.name, gain));
    }
    let vax = gains.iter().find(|(n, _)| n.contains("VAX")).unwrap().1;
    for (name, g) in &gains {
        if !name.contains("VAX") {
            assert!(*g > vax, "{name} ({g:.1}%) should beat the VAX ({vax:.1}%)");
        }
    }
}

#[test]
fn recursion_and_output() {
    let r = run(
        r#"
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main() { putchar('0' + fib(10) % 10); return fib(10); }
        "#,
        &MachineModel::m88100(),
        &OptOptions::all(),
    );
    assert_eq!(r.ret_int, 55);
    assert_eq!(r.output, b"5");
}

#[test]
fn auto_increment_saves_cycles() {
    const COPY: &str = r"
        double a[4000]; double b[4000];
        int main() {
            int i;
            for (i = 0; i < 4000; i++) a[i] = 1.0;
            for (i = 0; i < 4000; i++) b[i] = a[i];
            return 0;
        }
    ";
    let model = MachineModel::sun_3_280();
    // with strength reduction + auto-increment
    let fast = run(COPY, &model, &OptOptions::all());
    // naive indexed forms only
    let mut module = wm_frontend::compile(COPY).unwrap();
    for f in module.functions.iter_mut() {
        wm_opt::optimize_generic(f, &OptOptions::all());
        allocate_registers(f, TargetKind::Scalar).unwrap();
    }
    let slow = ScalarMachine::run(&module, "main", &[], &model).unwrap();
    assert!(
        fast.cycles < slow.cycles,
        "auto-increment should help: {} vs {}",
        fast.cycles,
        slow.cycles
    );
}

#[test]
fn wm_specific_code_is_rejected() {
    let mut module = wm_frontend::compile("int main() { return 0; }").unwrap();
    for f in module.functions.iter_mut() {
        wm_target::expand_wm(f);
        allocate_registers(f, TargetKind::Wm).unwrap();
    }
    // a module with WM instructions cannot run — but this tiny main has no
    // memory references, so force one in via a real program instead
    let mut module2 =
        wm_frontend::compile("int a[4]; int main() { a[0] = 1; return a[0]; }").unwrap();
    for f in module2.functions.iter_mut() {
        wm_target::expand_wm(f);
        allocate_registers(f, TargetKind::Wm).unwrap();
    }
    let err = ScalarMachine::run(&module2, "main", &[], &MachineModel::vax_8600()).unwrap_err();
    assert!(matches!(err, wm_machines::ScalarError::BadProgram(_)));
    let _ = module;
}

#[test]
fn division_by_zero_faults() {
    let m = compile_scalar(
        "int main() { int z; z = 0; return 3 / z; }",
        &OptOptions::none(),
    );
    let err = ScalarMachine::run(&m, "main", &[], &MachineModel::vax_8600()).unwrap_err();
    assert!(matches!(err, wm_machines::ScalarError::Fault(_)));
}

#[test]
fn exploratory_machines_run_and_agree() {
    const SRC: &str = r"
        int a[50];
        int main() {
            int i;
            a[0] = 1; a[1] = 1;
            for (i = 2; i < 50; i++) a[i] = (a[i-1] + a[i-2]) % 10007;
            return a[49];
        }
    ";
    let mut want = None;
    for model in MachineModel::all_machines() {
        let r = run(SRC, &model, &OptOptions::all());
        match want {
            None => want = Some(r.ret_int),
            Some(w) => assert_eq!(r.ret_int, w, "{}", model.name),
        }
        assert!(r.cycles > 0);
    }
    // the RS/6000 model should be the fastest of the set on this kernel
    let rs = run(SRC, &MachineModel::rs6000(), &OptOptions::all()).cycles;
    let sun = run(SRC, &MachineModel::sun_3_280(), &OptOptions::all()).cycles;
    assert!(rs < sun);
}
