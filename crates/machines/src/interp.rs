//! In-order interpreter for generic RTL with per-class latencies.

use wm_ir::{
    BinOp, GlobalKind, InstKind, MemRef, Module, Operand, RExpr, Reg, RegClass, UnOp, Width,
};
use wm_sim::MemoryImage;

use crate::model::MachineModel;

/// A scalar-machine execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarError {
    /// Memory fault.
    Fault(String),
    /// The module cannot run on the scalar interpreter.
    BadProgram(String),
    /// Cycle limit exceeded.
    Timeout(u64),
}

impl std::fmt::Display for ScalarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalarError::Fault(d) => write!(f, "fault: {d}"),
            ScalarError::BadProgram(d) => write!(f, "bad program: {d}"),
            ScalarError::Timeout(c) => write!(f, "cycle limit {c} exceeded"),
        }
    }
}

impl std::error::Error for ScalarError {}

/// Result of a completed scalar run.
#[derive(Debug, Clone)]
pub struct ScalarResult {
    /// Modelled execution time in cycles.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Integer return value (`r2`).
    pub ret_int: i64,
    /// FP return value (`f2`).
    pub ret_flt: f64,
    /// Bytes written via `putchar`.
    pub output: Vec<u8>,
    /// Memory reads performed.
    pub mem_reads: u64,
    /// Memory writes performed.
    pub mem_writes: u64,
}

const MAX_CYCLES: u64 = 200_000_000_000;

/// The in-order scalar interpreter.
pub struct ScalarMachine<'m> {
    module: &'m Module,
    model: MachineModel,
    mem: MemoryImage,
    iregs: [i64; 32],
    fregs: [f64; 32],
    cc: bool,
    output: Vec<u8>,
    cycles: u64,
    instructions: u64,
    mem_reads: u64,
    mem_writes: u64,
}

impl<'m> ScalarMachine<'m> {
    /// Run `entry` with integer `args` under `model`'s timing.
    ///
    /// # Errors
    ///
    /// Returns [`ScalarError`] on faults, bad modules or runaway execution.
    pub fn run(
        module: &'m Module,
        entry: &str,
        args: &[i64],
        model: &MachineModel,
    ) -> Result<ScalarResult, ScalarError> {
        for f in &module.functions {
            for inst in f.insts() {
                if inst
                    .kind
                    .uses()
                    .into_iter()
                    .chain(inst.kind.defs())
                    .any(|r| r.is_virt())
                {
                    return Err(ScalarError::BadProgram(format!(
                        "function {} still has virtual registers",
                        f.name
                    )));
                }
                if matches!(
                    inst.kind,
                    InstKind::WLoad { .. }
                        | InstKind::WStore { .. }
                        | InstKind::StreamIn { .. }
                        | InstKind::StreamOut { .. }
                        | InstKind::StreamStop { .. }
                        | InstKind::BranchStream { .. }
                        | InstKind::VStreamIn { .. }
                        | InstKind::VStreamOut { .. }
                        | InstKind::VLoad { .. }
                        | InstKind::VStore { .. }
                        | InstKind::VecBin { .. }
                        | InstKind::VecBroadcast { .. }
                        | InstKind::BranchVec { .. }
                ) {
                    return Err(ScalarError::BadProgram(format!(
                        "function {} contains WM-specific instructions",
                        f.name
                    )));
                }
            }
        }
        let mem = MemoryImage::new(module, 16 << 20)
            .map_err(|e| ScalarError::BadProgram(e.to_string()))?;
        let mut m = ScalarMachine {
            module,
            model: model.clone(),
            mem,
            iregs: [0; 32],
            fregs: [0.0; 32],
            cc: false,
            output: Vec::new(),
            cycles: 0,
            instructions: 0,
            mem_reads: 0,
            mem_writes: 0,
        };
        m.iregs[30] = m.mem.initial_sp;
        for (i, a) in args.iter().enumerate() {
            m.iregs[2 + i] = *a;
        }
        let sym = module
            .lookup(entry)
            .ok_or_else(|| ScalarError::BadProgram(format!("no entry symbol {entry}")))?;
        let fidx = match module.global(sym).kind {
            GlobalKind::Func(i) => i,
            _ => {
                return Err(ScalarError::BadProgram(format!(
                    "{entry} is not a function"
                )))
            }
        };
        m.exec_function(fidx)?;
        Ok(ScalarResult {
            cycles: m.cycles,
            instructions: m.instructions,
            ret_int: m.iregs[2],
            ret_flt: m.fregs[2],
            output: m.output,
            mem_reads: m.mem_reads,
            mem_writes: m.mem_writes,
        })
    }

    fn exec_function(&mut self, fidx: usize) -> Result<(), ScalarError> {
        let func = &self.module.functions[fidx];
        let mut block = 0usize;
        let mut inst = 0usize;
        loop {
            if self.cycles > MAX_CYCLES {
                return Err(ScalarError::Timeout(MAX_CYCLES));
            }
            if block >= func.blocks.len() {
                return Err(ScalarError::BadProgram(format!(
                    "control fell off the end of {}",
                    func.name
                )));
            }
            let insts = &func.blocks[block].insts;
            if inst >= insts.len() {
                block += 1;
                inst = 0;
                continue;
            }
            let kind = insts[inst].kind.clone();
            self.instructions += 1;
            match kind {
                InstKind::Nop => {}
                InstKind::Assign { dst, src } => {
                    self.cycles += self.assign_cost(&dst, &src);
                    let v = self.eval(&src, dst.class)?;
                    self.write(dst, v);
                }
                InstKind::LoadAddr { dst, sym, disp } => {
                    self.cycles += self.model.lea;
                    let addr = self.sym_addr(sym)? + disp;
                    self.write(dst, ScalarVal::I(addr));
                }
                InstKind::Compare { class, op, a, b } => {
                    self.cycles += if class == RegClass::Flt {
                        self.model.fp_cmp
                    } else {
                        self.model.cmp
                    };
                    let va = self.operand(a, class)?;
                    let vb = self.operand(b, class)?;
                    self.cc = match class {
                        RegClass::Int => op.eval_int(va.as_i(), vb.as_i()),
                        RegClass::Flt => op.eval_flt(va.as_f(), vb.as_f()),
                    };
                }
                InstKind::Jump { target } => {
                    self.cycles += self.model.jump;
                    block = func.block_index(target);
                    inst = 0;
                    continue;
                }
                InstKind::Branch {
                    when, target, els, ..
                } => {
                    let taken_label = if self.cc == when { target } else { els };
                    // fallthrough to the next block is the "not taken" cost
                    let next_is_fallthrough = func
                        .blocks
                        .get(block + 1)
                        .map(|b| b.label == taken_label)
                        .unwrap_or(false);
                    self.cycles += if next_is_fallthrough {
                        self.model.branch_not
                    } else {
                        self.model.branch_taken
                    };
                    block = func.block_index(taken_label);
                    inst = 0;
                    continue;
                }
                InstKind::GLoad { dst, mem } => {
                    self.cycles += self.access_cost(&mem, true);
                    let addr = self.effective_address(&mem)?;
                    let v = self.load(addr, mem.width, dst.class)?;
                    self.write(dst, v);
                    self.auto_update(&mem);
                    self.mem_reads += 1;
                }
                InstKind::GStore { src, mem } => {
                    self.cycles += self.access_cost(&mem, false);
                    let addr = self.effective_address(&mem)?;
                    let klass = if mem.width == Width::D8 {
                        RegClass::Flt
                    } else {
                        RegClass::Int
                    };
                    let v = self.operand(src, klass)?;
                    self.store(addr, mem.width, v)?;
                    self.auto_update(&mem);
                    self.mem_writes += 1;
                }
                InstKind::Call { callee, .. } => match &self.module.global(callee).kind {
                    GlobalKind::Func(fi) => {
                        self.cycles += self.model.call;
                        let fi = *fi;
                        self.exec_function(fi)?;
                    }
                    GlobalKind::Builtin => {
                        self.cycles += self.model.call + self.model.io;
                        let name = self.module.sym_name(callee).to_string();
                        self.builtin(&name)?;
                    }
                    GlobalKind::Data { .. } => {
                        return Err(ScalarError::BadProgram("call to data symbol".into()))
                    }
                },
                InstKind::Ret => {
                    self.cycles += self.model.ret;
                    return Ok(());
                }
                other => {
                    return Err(ScalarError::BadProgram(format!(
                        "unsupported instruction {other}"
                    )))
                }
            }
            inst += 1;
        }
    }

    fn assign_cost(&self, dst: &Reg, src: &RExpr) -> u64 {
        let m = &self.model;
        let op_cost = |op: &BinOp| match op {
            BinOp::FAdd | BinOp::FSub => m.fp_add,
            BinOp::FMul => m.fp_mul,
            BinOp::FDiv => m.fp_div,
            BinOp::Mul => m.int_mul,
            BinOp::Div | BinOp::Rem => m.int_div,
            _ => m.int_op,
        };
        match src {
            RExpr::Op(_) => m.move_rr,
            RExpr::Un(u, _) => match u {
                UnOp::IntToFlt | UnOp::FltToInt => m.convert,
                UnOp::FNeg => m.fp_add,
                _ => m.int_op,
            },
            RExpr::Bin(op, ..) => op_cost(op),
            RExpr::Dual { inner, outer, .. } => op_cost(inner) + op_cost(outer),
        }
        .max(u64::from(dst.class == RegClass::Flt))
        .max(1)
    }

    fn access_cost(&self, mem: &MemRef, is_load: bool) -> u64 {
        let m = &self.model;
        let base = match (mem.width == Width::D8, is_load) {
            (true, true) => m.fp_load,
            (true, false) => m.fp_store,
            (false, true) => m.load,
            (false, false) => m.store,
        };
        base + if mem.index.is_some() {
            m.index_penalty
        } else {
            0
        }
    }

    fn effective_address(&mut self, mem: &MemRef) -> Result<i64, ScalarError> {
        let mut addr = mem.disp;
        if let Some(sym) = mem.sym {
            addr += self.sym_addr(sym)?;
        }
        if let Some(b) = mem.base {
            addr += self.ireg(b)?;
        }
        if let Some((idx, scale)) = mem.index {
            addr += self.ireg(idx)? << scale;
        }
        Ok(addr)
    }

    fn auto_update(&mut self, mem: &MemRef) {
        if mem.auto == wm_ir::AutoMode::PostInc {
            if let Some(b) = mem.base {
                let n = b.phys_num().unwrap() as usize;
                self.iregs[n] += mem.width.bytes();
            }
        } else if mem.auto == wm_ir::AutoMode::PreDec {
            if let Some(b) = mem.base {
                let n = b.phys_num().unwrap() as usize;
                self.iregs[n] -= mem.width.bytes();
            }
        }
    }

    fn sym_addr(&self, sym: wm_ir::SymId) -> Result<i64, ScalarError> {
        self.mem
            .addresses
            .get(&sym)
            .copied()
            .ok_or_else(|| ScalarError::BadProgram("address of non-data symbol".into()))
    }

    fn ireg(&self, r: Reg) -> Result<i64, ScalarError> {
        if r.class != RegClass::Int {
            return Err(ScalarError::BadProgram(format!(
                "{r} is not an integer register"
            )));
        }
        let n = r.phys_num().unwrap() as usize;
        Ok(if n == 31 { 0 } else { self.iregs[n] })
    }

    fn operand(&self, op: Operand, class: RegClass) -> Result<ScalarVal, ScalarError> {
        Ok(match op {
            Operand::Imm(v) => ScalarVal::I(v),
            Operand::FImm(v) => ScalarVal::F(v),
            Operand::Reg(r) => {
                let n = r
                    .phys_num()
                    .ok_or_else(|| ScalarError::BadProgram("virtual register at run time".into()))?
                    as usize;
                if n == 31 {
                    match class {
                        RegClass::Int => ScalarVal::I(0),
                        RegClass::Flt => ScalarVal::F(0.0),
                    }
                } else {
                    match r.class {
                        RegClass::Int => ScalarVal::I(self.iregs[n]),
                        RegClass::Flt => ScalarVal::F(self.fregs[n]),
                    }
                }
            }
        })
    }

    fn eval(&mut self, e: &RExpr, class: RegClass) -> Result<ScalarVal, ScalarError> {
        match e {
            RExpr::Op(a) => self.operand(*a, class),
            RExpr::Un(op, a) => {
                let cls = if op.operand_is_float() {
                    RegClass::Flt
                } else {
                    RegClass::Int
                };
                let v = self.operand(*a, cls)?;
                Ok(match op {
                    UnOp::Neg => ScalarVal::I(v.as_i().wrapping_neg()),
                    UnOp::Not => ScalarVal::I(!v.as_i()),
                    UnOp::FNeg => ScalarVal::F(-v.as_f()),
                    UnOp::IntToFlt => ScalarVal::F(v.as_i() as f64),
                    UnOp::FltToInt => ScalarVal::I(v.as_f() as i64),
                })
            }
            RExpr::Bin(op, a, b) => {
                let cls = if op.is_float() {
                    RegClass::Flt
                } else {
                    RegClass::Int
                };
                let va = self.operand(*a, cls)?;
                let vb = self.operand(*b, cls)?;
                self.binop(*op, va, vb)
            }
            RExpr::Dual {
                inner,
                a,
                b,
                outer,
                c,
            } => {
                let cls = if inner.is_float() {
                    RegClass::Flt
                } else {
                    RegClass::Int
                };
                let va = self.operand(*a, cls)?;
                let vb = self.operand(*b, cls)?;
                let vab = self.binop(*inner, va, vb)?;
                let cls2 = if outer.is_float() {
                    RegClass::Flt
                } else {
                    RegClass::Int
                };
                let vc = self.operand(*c, cls2)?;
                self.binop(*outer, vab, vc)
            }
        }
    }

    fn binop(&self, op: BinOp, a: ScalarVal, b: ScalarVal) -> Result<ScalarVal, ScalarError> {
        if op.is_float() {
            let (x, y) = (a.as_f(), b.as_f());
            return Ok(ScalarVal::F(match op {
                BinOp::FAdd => x + y,
                BinOp::FSub => x - y,
                BinOp::FMul => x * y,
                BinOp::FDiv => x / y,
                _ => unreachable!(),
            }));
        }
        let (x, y) = (a.as_i(), b.as_i());
        if matches!(op, BinOp::Div | BinOp::Rem) && y == 0 {
            return Err(ScalarError::Fault("integer division by zero".into()));
        }
        Ok(ScalarVal::I(op.fold_int(x, y).expect("integer operator")))
    }

    fn write(&mut self, dst: Reg, v: ScalarVal) {
        let n = dst.phys_num().unwrap() as usize;
        if n == 31 {
            return;
        }
        match dst.class {
            RegClass::Int => self.iregs[n] = v.as_i(),
            RegClass::Flt => self.fregs[n] = v.as_f(),
        }
    }

    fn load(&self, addr: i64, width: Width, class: RegClass) -> Result<ScalarVal, ScalarError> {
        if class == RegClass::Flt && width == Width::D8 {
            self.mem
                .read_flt(addr)
                .map(ScalarVal::F)
                .map_err(|e| ScalarError::Fault(e.to_string()))
        } else {
            self.mem
                .read_int(addr, width)
                .map(ScalarVal::I)
                .map_err(|e| ScalarError::Fault(e.to_string()))
        }
    }

    fn store(&mut self, addr: i64, width: Width, v: ScalarVal) -> Result<(), ScalarError> {
        let res = match v {
            ScalarVal::F(x) if width == Width::D8 => self.mem.write_flt(addr, x),
            x => self.mem.write_int(addr, width, x.as_i()),
        };
        res.map_err(|e| ScalarError::Fault(e.to_string()))
    }

    fn builtin(&mut self, name: &str) -> Result<(), ScalarError> {
        match name {
            "putchar" => {
                self.output.push(self.iregs[2] as u8);
                Ok(())
            }
            other => Err(ScalarError::BadProgram(format!("unknown builtin {other}"))),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum ScalarVal {
    I(i64),
    F(f64),
}

impl ScalarVal {
    fn as_i(self) -> i64 {
        match self {
            ScalarVal::I(v) => v,
            ScalarVal::F(v) => v as i64,
        }
    }
    fn as_f(self) -> f64 {
        match self {
            ScalarVal::I(v) => v as f64,
            ScalarVal::F(v) => v,
        }
    }
}
