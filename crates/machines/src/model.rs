//! Per-machine instruction timing models.

/// Instruction-class latencies, in cycles, for an in-order single-issue
/// scalar machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineModel {
    /// Display name.
    pub name: &'static str,
    /// Register-to-register move.
    pub move_rr: u64,
    /// Integer ALU operation (add, shift, logic).
    pub int_op: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide.
    pub int_div: u64,
    /// Integer/word load from memory.
    pub load: u64,
    /// Integer/word store.
    pub store: u64,
    /// Floating-point load (memory → FP register).
    pub fp_load: u64,
    /// Floating-point store.
    pub fp_store: u64,
    /// FP add/subtract.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide.
    pub fp_div: u64,
    /// Integer compare.
    pub cmp: u64,
    /// FP compare.
    pub fp_cmp: u64,
    /// Conditional branch, taken.
    pub branch_taken: u64,
    /// Conditional branch, not taken.
    pub branch_not: u64,
    /// Unconditional jump.
    pub jump: u64,
    /// Address formation (`lea`).
    pub lea: u64,
    /// Extra cycles for a scaled-index addressing mode.
    pub index_penalty: u64,
    /// Call instruction (including return-address handling).
    pub call: u64,
    /// Return instruction.
    pub ret: u64,
    /// Int ↔ FP conversion.
    pub convert: u64,
    /// Builtin I/O call (`putchar`): system-call overhead.
    pub io: u64,
}

impl MachineModel {
    /// Sun 3/280: 25 MHz 68020 with a 20 MHz 68881 FPU. The coprocessor
    /// protocol makes every FP operand transfer expensive, so memory
    /// references are a large fraction of FP loop time.
    pub fn sun_3_280() -> MachineModel {
        MachineModel {
            name: "Sun 3/280",
            move_rr: 2,
            int_op: 3,
            int_mul: 28,
            int_div: 45,
            load: 7,
            store: 6,
            fp_load: 40,
            fp_store: 40,
            fp_add: 22,
            fp_mul: 26,
            fp_div: 60,
            cmp: 3,
            fp_cmp: 20,
            branch_taken: 6,
            branch_not: 4,
            jump: 5,
            lea: 4,
            index_penalty: 4,
            call: 15,
            ret: 10,
            convert: 25,
            io: 60,
        }
    }

    /// HP 9000/345: 50 MHz 68030 with a 68882. Same architecture family as
    /// the Sun but with a faster FP interface and burst cache.
    pub fn hp_9000_345() -> MachineModel {
        MachineModel {
            name: "HP 9000/345",
            move_rr: 2,
            int_op: 2,
            int_mul: 22,
            int_div: 38,
            load: 5,
            store: 5,
            fp_load: 16,
            fp_store: 16,
            fp_add: 18,
            fp_mul: 22,
            fp_div: 45,
            cmp: 2,
            fp_cmp: 12,
            branch_taken: 5,
            branch_not: 3,
            jump: 4,
            lea: 3,
            index_penalty: 3,
            call: 12,
            ret: 8,
            convert: 18,
            io: 60,
        }
    }

    /// VAX 8600: heavily pipelined operand fetch — loads mostly overlap
    /// execution, so eliminating one buys the least.
    pub fn vax_8600() -> MachineModel {
        MachineModel {
            name: "VAX 8600",
            move_rr: 1,
            int_op: 2,
            int_mul: 12,
            int_div: 25,
            load: 2,
            store: 2,
            fp_load: 2,
            fp_store: 4,
            fp_add: 11,
            fp_mul: 14,
            fp_div: 25,
            cmp: 2,
            fp_cmp: 5,
            branch_taken: 3,
            branch_not: 2,
            jump: 2,
            lea: 1,
            index_penalty: 1,
            call: 12,
            ret: 10,
            convert: 8,
            io: 60,
        }
    }

    /// Motorola 88100: scoreboarded RISC; loads are pipelined and cheap,
    /// FP is moderately fast.
    pub fn m88100() -> MachineModel {
        MachineModel {
            name: "Motorola 88100",
            move_rr: 1,
            int_op: 1,
            int_mul: 4,
            int_div: 38,
            load: 2,
            store: 1,
            fp_load: 2,
            fp_store: 2,
            fp_add: 5,
            fp_mul: 6,
            fp_div: 30,
            cmp: 1,
            fp_cmp: 5,
            branch_taken: 2,
            branch_not: 1,
            jump: 1,
            lea: 1,
            index_penalty: 1,
            call: 5,
            ret: 3,
            convert: 5,
            io: 60,
        }
    }

    /// Intel i860 — one of the processors the paper says the algorithms
    /// "would also be applicable to". Dual-instruction-mode RISC with
    /// pipelined FP; modelled in its scalar (non-pipelined-FP) mode.
    /// Not part of Table I; provided for exploration.
    pub fn i860() -> MachineModel {
        MachineModel {
            name: "Intel i860",
            move_rr: 1,
            int_op: 1,
            int_mul: 5,
            int_div: 40,
            load: 2,
            store: 1,
            fp_load: 2,
            fp_store: 2,
            fp_add: 3,
            fp_mul: 4,
            fp_div: 22,
            cmp: 1,
            fp_cmp: 3,
            branch_taken: 2,
            branch_not: 1,
            jump: 1,
            lea: 1,
            index_penalty: 0,
            call: 4,
            ret: 2,
            convert: 4,
            io: 40,
        }
    }

    /// IBM RS/6000 (POWER) — the machine whose C compiler was the only one
    /// of the six the paper examined that optimized recurrences. Superscalar
    /// in reality; modelled in-order with short latencies. Not part of
    /// Table I; provided for exploration.
    pub fn rs6000() -> MachineModel {
        MachineModel {
            name: "IBM RS/6000",
            move_rr: 1,
            int_op: 1,
            int_mul: 4,
            int_div: 20,
            load: 1,
            store: 1,
            fp_load: 1,
            fp_store: 1,
            fp_add: 2,
            fp_mul: 2,
            fp_div: 17,
            cmp: 1,
            fp_cmp: 2,
            branch_taken: 1,
            branch_not: 1,
            jump: 1,
            lea: 1,
            index_penalty: 0,
            call: 3,
            ret: 2,
            convert: 3,
            io: 40,
        }
    }

    /// All four Table-I scalar machines.
    pub fn table1_machines() -> Vec<MachineModel> {
        vec![
            MachineModel::sun_3_280(),
            MachineModel::hp_9000_345(),
            MachineModel::vax_8600(),
            MachineModel::m88100(),
        ]
    }

    /// Every model in the crate, including the exploratory ones.
    pub fn all_machines() -> Vec<MachineModel> {
        let mut v = MachineModel::table1_machines();
        v.push(MachineModel::i860());
        v.push(MachineModel::rs6000());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_have_distinct_profiles() {
        let ms = MachineModel::table1_machines();
        assert_eq!(ms.len(), 4);
        assert_eq!(MachineModel::all_machines().len(), 6);
        // FP loads dominate on the 68881 machines, not on the VAX/88k
        let sun = &ms[0];
        let vax = &ms[2];
        assert!(sun.fp_load > 5 * vax.fp_load);
        // names are unique
        let mut names: Vec<&str> = ms.iter().map(|m| m.name).collect();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
