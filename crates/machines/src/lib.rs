//! In-order timing models of the scalar machines of Table I.
//!
//! The paper measures the recurrence optimization on real hardware: a
//! Sun 3/280, an HP 9000/345, a VAX 8600 and a Motorola 88100 (plus the WM
//! simulator). That hardware is long gone; this crate substitutes
//! **in-order, single-issue interpreters of the generic RTL** with
//! per-instruction-class latencies chosen from each machine's published
//! characteristics:
//!
//! * **Sun 3/280** — 68020 + 68881: floating-point operands move over the
//!   coprocessor interface, so FP loads/stores cost nearly as much as the
//!   arithmetic itself;
//! * **HP 9000/345** — 68030 + 68882 at a higher clock with a burst-mode
//!   cache: the same shape, uniformly faster FP access;
//! * **VAX 8600** — pipelined memory-operand architecture: operand fetch
//!   largely overlaps execution, so removing a load saves the least;
//! * **Motorola 88100** — scoreboarded RISC with pipelined loads.
//!
//! The absolute numbers are calibrations, not measurements; EXPERIMENTS.md
//! records how each model's Table-I percentage compares with the paper's.
//!
//! # Example
//!
//! ```
//! use wm_machines::{MachineModel, ScalarMachine};
//!
//! let mut module = wm_frontend::compile("int main() { return 2 + 3; }").unwrap();
//! for f in module.functions.iter_mut() {
//!     wm_target::allocate_registers(f, wm_target::TargetKind::Scalar).unwrap();
//! }
//! let r = ScalarMachine::run(&module, "main", &[], &MachineModel::sun_3_280()).unwrap();
//! assert_eq!(r.ret_int, 5);
//! ```

mod interp;
mod model;

pub use interp::{ScalarError, ScalarMachine, ScalarResult};
pub use model::MachineModel;
