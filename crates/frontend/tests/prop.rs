//! Property tests: the front end must never panic, whatever the input,
//! and valid generated programs must always compile.

use proptest::prelude::*;
use wm_frontend::{Lexer, TokenKind};

proptest! {
    /// The lexer returns a token stream or an error — it never panics — and
    /// a successful stream always ends with EOF.
    #[test]
    fn lexer_total_on_arbitrary_input(src in "\\PC*") {
        if let Ok(tokens) = Lexer::new(&src).tokenize() {
            prop_assert!(!tokens.is_empty());
            prop_assert_eq!(&tokens.last().unwrap().kind, &TokenKind::Eof);
        }
    }

    /// The parser is total as well.
    #[test]
    fn parser_total_on_arbitrary_input(src in "\\PC*") {
        let _ = wm_frontend::parse(&src);
    }

    /// Compilation (parse + lower) is total on arbitrary bytes.
    #[test]
    fn compile_total_on_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("int"), Just("double"), Just("char"), Just("while"),
                Just("if"), Just("return"), Just("("), Just(")"), Just("{"),
                Just("}"), Just(";"), Just("x"), Just("y"), Just("1"),
                Just("2.5"), Just("+"), Just("*"), Just("="), Just("["),
                Just("]"), Just(","), Just("&"), Just("for")
            ],
            0..60,
        )
    ) {
        let src = words.join(" ");
        let _ = wm_frontend::compile(&src);
    }

    /// Generated straight-line arithmetic programs always compile, and the
    /// lexer agrees with itself on line counting.
    #[test]
    fn generated_expressions_compile(
        terms in proptest::collection::vec((0i64..1000, 0usize..4), 1..20)
    ) {
        let ops = ["+", "-", "*", "|", "^"];
        let expr = terms
            .iter()
            .map(|(v, o)| format!("{v} {} ", ops[o % ops.len()]))
            .collect::<String>();
        let src = format!("int main() {{ return {expr} 1; }}");
        let module = wm_frontend::compile(&src).expect("valid straight-line program");
        prop_assert!(module.function_named("main").is_some());
    }

    /// Nested control flow of arbitrary depth parses and lowers.
    #[test]
    fn nested_blocks_compile(depth in 1usize..30) {
        let open: String = (0..depth).map(|i| format!("if (n > {i}) {{ ")).collect();
        let close: String = "}".repeat(depth);
        let src = format!("int f(int n) {{ {open} n = n + 1; {close} return n; }}");
        wm_frontend::compile(&src).expect("nested ifs compile");
    }
}

#[test]
fn deep_expression_nesting_is_rejected_not_crashed() {
    // modest nesting compiles …
    let open = "(".repeat(60);
    let close = ")".repeat(60);
    let src = format!("int main() {{ return {open}1{close}; }}");
    wm_frontend::compile(&src).expect("60-deep parens compile");
    // … absurd nesting gets a clean error instead of a stack overflow
    let open = "(".repeat(5000);
    let close = ")".repeat(5000);
    let src = format!("int main() {{ return {open}1{close}; }}");
    let err = wm_frontend::compile(&src).unwrap_err();
    assert!(err.to_string().contains("nesting too deep"), "{err}");
}
