//! Abstract syntax tree for mini-C.

/// A mini-C type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// 32-bit signed integer (stored in 4 bytes, computed in registers).
    Int,
    /// Unsigned byte.
    Char,
    /// 64-bit IEEE floating point.
    Double,
    /// No value (function return type only).
    Void,
    /// Pointer to an element type.
    Ptr(Box<Type>),
    /// One-dimensional array (declarations only; decays to pointer in
    /// expressions).
    Array(Box<Type>, usize),
}

impl Type {
    /// Size of a value of this type in bytes.
    pub fn size(&self) -> usize {
        match self {
            Type::Int => 4,
            Type::Char => 1,
            Type::Double => 8,
            Type::Void => 0,
            Type::Ptr(_) => 4,
            Type::Array(t, n) => t.size() * n,
        }
    }

    /// The element type if this is an array or pointer.
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) | Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Is this a floating-point type?
    pub fn is_double(&self) -> bool {
        *self == Type::Double
    }

    /// Is this an integer-class type (int, char, pointer)?
    pub fn is_integral(&self) -> bool {
        matches!(self, Type::Int | Type::Char | Type::Ptr(_))
    }

    /// The type this decays to when used as a value (arrays → pointers).
    pub fn decayed(&self) -> Type {
        match self {
            Type::Array(t, _) => Type::Ptr(t.clone()),
            other => other.clone(),
        }
    }
}

/// Binary operators (after lexing; `&&`/`||` included).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LogAnd,
    LogOr,
}

impl BinaryOp {
    /// Is this a comparison producing a boolean?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-e`
    Neg,
    /// `!e`
    LogNot,
    /// `~e`
    BitNot,
    /// `*e`
    Deref,
    /// `&e`
    AddrOf,
}

/// Compound-assignment operators (`=` is `AssignOp::Eq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    Eq,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

/// An expression with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Node kind.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: u32,
}

/// Expression node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    IntLit(i64),
    FltLit(f64),
    CharLit(u8),
    /// String literal; lowered to an anonymous global `char` array.
    StrLit(String),
    /// Variable reference.
    Var(String),
    /// `a[i]`
    Index(Box<Expr>, Box<Expr>),
    /// `f(a, b, ...)`
    Call(String, Vec<Expr>),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation (including `&&`/`||`, which short-circuit).
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Assignment `lhs op= rhs`.
    Assign(AssignOp, Box<Expr>, Box<Expr>),
    /// Conditional `c ? t : e`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Cast `(type) e`.
    Cast(Type, Box<Expr>),
    /// `e++` / `e--` (postfix when `post`, prefix otherwise).
    IncDec {
        target: Box<Expr>,
        inc: bool,
        post: bool,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local declaration `ty name [= init];` or `ty name[n];`.
    Decl {
        ty: Type,
        name: String,
        init: Option<Expr>,
        line: u32,
    },
    If {
        cond: Expr,
        then: Box<Stmt>,
        els: Option<Box<Stmt>>,
    },
    While {
        cond: Expr,
        body: Box<Stmt>,
    },
    DoWhile {
        body: Box<Stmt>,
        cond: Expr,
    },
    For {
        init: Option<Expr>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
    },
    Return(Option<Expr>, u32),
    Break(u32),
    Continue(u32),
    Block(Vec<Stmt>),
    Empty,
}

/// A global-variable initializer.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// `= expr` (must be a constant expression).
    Scalar(Expr),
    /// `= { e, e, ... }` for arrays.
    List(Vec<Expr>),
    /// `= "..."` for char arrays.
    Str(String),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters in declaration order.
    pub params: Vec<(Type, String)>,
    /// Body statements (empty for a prototype).
    pub body: Vec<Stmt>,
    /// Declaration line.
    pub line: u32,
    /// Is this a body-less forward declaration (`int f(int x);`)?
    pub is_prototype: bool,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Function definition.
    Func(FuncDecl),
    /// Global variable.
    Global {
        ty: Type,
        name: String,
        init: Option<Init>,
        line: u32,
    },
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes() {
        assert_eq!(Type::Int.size(), 4);
        assert_eq!(Type::Char.size(), 1);
        assert_eq!(Type::Double.size(), 8);
        assert_eq!(Type::Ptr(Box::new(Type::Double)).size(), 4);
        assert_eq!(Type::Array(Box::new(Type::Double), 10).size(), 80);
    }

    #[test]
    fn decay() {
        let arr = Type::Array(Box::new(Type::Int), 4);
        assert_eq!(arr.decayed(), Type::Ptr(Box::new(Type::Int)));
        assert_eq!(Type::Int.decayed(), Type::Int);
        assert_eq!(arr.element(), Some(&Type::Int));
    }

    #[test]
    fn classification() {
        assert!(Type::Ptr(Box::new(Type::Char)).is_integral());
        assert!(!Type::Double.is_integral());
        assert!(Type::Double.is_double());
        assert!(BinaryOp::Le.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
    }
}
