//! Compilation errors.

use std::error::Error;
use std::fmt;

/// An error produced while compiling mini-C source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line the error was detected on (0 if unknown).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Create an error at `line`.
    pub fn new(line: u32, message: impl Into<String>) -> CompileError {
        CompileError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = CompileError::new(12, "unexpected token");
        assert_eq!(e.to_string(), "line 12: unexpected token");
        let e = CompileError::new(0, "eof");
        assert_eq!(e.to_string(), "eof");
    }
}
