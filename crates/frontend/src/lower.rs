//! Lowering from the mini-C AST to generic RTL.
//!
//! This implements the paper's first strategy: "the front end generates
//! naive but correct code for a simple abstract machine … Both of these
//! phases are concerned only with producing semantically correct code.
//! Efficiency is not an issue."
//!
//! Scalar locals live in virtual registers; local arrays live in the stack
//! frame addressed off the stack pointer; globals are referenced
//! symbolically. Loops are lowered into the guarded, bottom-tested form the
//! paper's Figure 4 exhibits (a guard test before the loop and the loop
//! condition re-tested at the bottom), which is what the loop analyses in
//! `wm-opt` expect.

use std::collections::HashMap;

use wm_ir::{
    BinOp, CmpOp, Function, InstKind, Label, MemRef, Module, Operand, RExpr, Reg, RegClass, SymId,
    UnOp, Width,
};

use crate::ast::*;
use crate::error::CompileError;

/// Lower a parsed program to a generic-RTL module.
pub fn lower(program: &Program) -> Result<Module, CompileError> {
    let mut module = Module::new();
    let mut globals: HashMap<String, (SymId, Type)> = HashMap::new();
    let mut funcs: HashMap<String, FuncSig> = HashMap::new();

    // Builtins provided by the simulators.
    {
        let name = "putchar";
        let sym = module.add_builtin(name);
        funcs.insert(
            name.to_string(),
            FuncSig {
                sym,
                ret: Type::Int,
                params: vec![Type::Int],
            },
        );
    }

    // Pass 1: declare globals and function signatures.
    for item in &program.items {
        match item {
            Item::Global {
                ty,
                name,
                init,
                line,
            } => {
                if globals.contains_key(name) {
                    return Err(CompileError::new(*line, format!("duplicate global {name}")));
                }
                let bytes = init_bytes(ty, init.as_ref(), *line)?;
                let align = base_align(ty);
                let sym = module.add_data(name.clone(), ty.size() as u64, align, bytes);
                globals.insert(name.clone(), (sym, ty.clone()));
            }
            Item::Func(f) => {
                if let Some(existing) = funcs.get(&f.name) {
                    // re-declaration is fine if the signature matches and at
                    // most one of them has a body
                    let same = existing.ret == f.ret
                        && existing.params
                            == f.params
                                .iter()
                                .map(|(t, _)| t.decayed())
                                .collect::<Vec<_>>();
                    if !same {
                        return Err(CompileError::new(
                            f.line,
                            format!("conflicting declarations of {}", f.name),
                        ));
                    }
                    continue;
                }
                let sym = module.declare_function(&f.name);
                funcs.insert(
                    f.name.clone(),
                    FuncSig {
                        sym,
                        ret: f.ret.clone(),
                        params: f.params.iter().map(|(t, _)| t.decayed()).collect(),
                    },
                );
            }
        }
    }

    // Pass 2: lower function bodies (prototypes have none).
    let mut defined: Vec<String> = Vec::new();
    for item in &program.items {
        if let Item::Func(decl) = item {
            if decl.is_prototype {
                continue;
            }
            if defined.contains(&decl.name) {
                return Err(CompileError::new(
                    decl.line,
                    format!("duplicate definition of {}", decl.name),
                ));
            }
            defined.push(decl.name.clone());
            let sym = funcs[&decl.name].sym;
            let func = FnCx::lower_function(decl, &mut module, &globals, &funcs)?;
            module.define_function(sym, func);
        }
    }
    // every prototype must have found a definition
    for item in &program.items {
        if let Item::Func(decl) = item {
            if decl.is_prototype && !defined.contains(&decl.name) {
                return Err(CompileError::new(
                    decl.line,
                    format!("{} is declared but never defined", decl.name),
                ));
            }
        }
    }
    Ok(module)
}

#[derive(Debug, Clone)]
struct FuncSig {
    sym: SymId,
    ret: Type,
    params: Vec<Type>,
}

fn base_align(ty: &Type) -> u64 {
    match ty {
        Type::Array(el, _) => base_align(el),
        Type::Double => 8,
        Type::Int | Type::Ptr(_) => 4,
        Type::Char => 1,
        Type::Void => 1,
    }
}

/// Serialize a global initializer into bytes.
fn init_bytes(ty: &Type, init: Option<&Init>, line: u32) -> Result<Vec<u8>, CompileError> {
    let Some(init) = init else {
        return Ok(Vec::new()); // zero-initialized
    };
    match (ty, init) {
        (Type::Array(el, n), Init::List(es)) => {
            if es.len() > *n {
                return Err(CompileError::new(line, "too many initializers"));
            }
            let mut out = Vec::with_capacity(el.size() * es.len());
            for e in es {
                let v = eval_const(e)?;
                push_scalar(&mut out, el, v, e.line)?;
            }
            Ok(out)
        }
        (Type::Array(el, n), Init::Str(s)) => {
            if **el != Type::Char {
                return Err(CompileError::new(
                    line,
                    "string initializer on non-char array",
                ));
            }
            if s.len() + 1 > *n {
                return Err(CompileError::new(line, "string longer than array"));
            }
            let mut out = s.as_bytes().to_vec();
            out.push(0);
            Ok(out)
        }
        (Type::Array(..), Init::Scalar(_)) => {
            Err(CompileError::new(line, "scalar initializer on array"))
        }
        (_, Init::Scalar(e)) => {
            let v = eval_const(e)?;
            let mut out = Vec::new();
            push_scalar(&mut out, ty, v, e.line)?;
            Ok(out)
        }
        (_, _) => Err(CompileError::new(line, "aggregate initializer on scalar")),
    }
}

fn push_scalar(out: &mut Vec<u8>, ty: &Type, v: ConstVal, line: u32) -> Result<(), CompileError> {
    match ty {
        Type::Int | Type::Ptr(_) => {
            let x = v.as_int();
            out.extend_from_slice(&(x as i32).to_le_bytes());
        }
        Type::Char => out.push(v.as_int() as u8),
        Type::Double => out.extend_from_slice(&v.as_flt().to_le_bytes()),
        _ => return Err(CompileError::new(line, "cannot initialize this type")),
    }
    Ok(())
}

#[derive(Debug, Clone, Copy)]
enum ConstVal {
    Int(i64),
    Flt(f64),
}

impl ConstVal {
    fn as_int(self) -> i64 {
        match self {
            ConstVal::Int(v) => v,
            ConstVal::Flt(v) => v as i64,
        }
    }
    fn as_flt(self) -> f64 {
        match self {
            ConstVal::Int(v) => v as f64,
            ConstVal::Flt(v) => v,
        }
    }
}

/// Evaluate a constant expression (for global initializers).
fn eval_const(e: &Expr) -> Result<ConstVal, CompileError> {
    match &e.kind {
        ExprKind::IntLit(v) => Ok(ConstVal::Int(*v)),
        ExprKind::FltLit(v) => Ok(ConstVal::Flt(*v)),
        ExprKind::CharLit(v) => Ok(ConstVal::Int(*v as i64)),
        ExprKind::Unary(UnaryOp::Neg, a) => match eval_const(a)? {
            ConstVal::Int(v) => Ok(ConstVal::Int(-v)),
            ConstVal::Flt(v) => Ok(ConstVal::Flt(-v)),
        },
        ExprKind::Cast(Type::Int, a) => Ok(ConstVal::Int(eval_const(a)?.as_int())),
        ExprKind::Cast(Type::Double, a) => Ok(ConstVal::Flt(eval_const(a)?.as_flt())),
        ExprKind::Binary(op, a, b) => {
            let a = eval_const(a)?;
            let b = eval_const(b)?;
            let float = matches!(a, ConstVal::Flt(_)) || matches!(b, ConstVal::Flt(_));
            if float {
                let (x, y) = (a.as_flt(), b.as_flt());
                let r = match op {
                    BinaryOp::Add => x + y,
                    BinaryOp::Sub => x - y,
                    BinaryOp::Mul => x * y,
                    BinaryOp::Div => x / y,
                    _ => return Err(CompileError::new(e.line, "not a constant expression")),
                };
                Ok(ConstVal::Flt(r))
            } else {
                let (x, y) = (a.as_int(), b.as_int());
                let r = match op {
                    BinaryOp::Add => x.wrapping_add(y),
                    BinaryOp::Sub => x.wrapping_sub(y),
                    BinaryOp::Mul => x.wrapping_mul(y),
                    BinaryOp::Div if y != 0 => x / y,
                    BinaryOp::Shl => x << (y & 63),
                    BinaryOp::Shr => x >> (y & 63),
                    BinaryOp::BitAnd => x & y,
                    BinaryOp::BitOr => x | y,
                    BinaryOp::BitXor => x ^ y,
                    _ => return Err(CompileError::new(e.line, "not a constant expression")),
                };
                Ok(ConstVal::Int(r))
            }
        }
        _ => Err(CompileError::new(e.line, "not a constant expression")),
    }
}

/// A value: an operand plus its mini-C type.
#[derive(Debug, Clone)]
struct Val {
    op: Operand,
    ty: Type,
}

/// An assignable location.
#[derive(Debug, Clone)]
enum Place {
    /// A scalar local held in a virtual register.
    Reg(Reg, Type),
    /// A memory location.
    Mem(MemRef, Type),
}

#[derive(Debug, Clone)]
enum Binding {
    Scalar(Reg, Type),
    /// Local array at a fixed offset in the stack frame.
    FrameArray(i64, Type),
}

struct FnCx<'a> {
    f: Function,
    cur: Label,
    module: &'a mut Module,
    globals: &'a HashMap<String, (SymId, Type)>,
    funcs: &'a HashMap<String, FuncSig>,
    scopes: Vec<HashMap<String, Binding>>,
    ret_ty: Type,
    exit: Label,
    /// (continue target, break target) per enclosing loop.
    loops: Vec<(Label, Label)>,
    str_count: u32,
}

impl<'a> FnCx<'a> {
    fn lower_function(
        decl: &FuncDecl,
        module: &'a mut Module,
        globals: &'a HashMap<String, (SymId, Type)>,
        funcs: &'a HashMap<String, FuncSig>,
    ) -> Result<Function, CompileError> {
        let n_int = decl
            .params
            .iter()
            .filter(|(t, _)| t.decayed().is_integral())
            .count();
        let n_flt = decl.params.len() - n_int;
        let mut f = Function::new(&decl.name, n_int, n_flt);
        // Function::new allocates int params then float params; bind names
        // in declaration order to the right vregs.
        let mut int_i = 0;
        let mut flt_i = 0;
        let mut top = HashMap::new();
        for (ty, name) in &decl.params {
            let ty = ty.decayed();
            let reg = if ty.is_integral() {
                let r = f.params[int_i];
                int_i += 1;
                r
            } else {
                let r = f.params[n_int + flt_i];
                flt_i += 1;
                r
            };
            top.insert(name.clone(), Binding::Scalar(reg, ty));
        }
        if decl.ret != Type::Void {
            let class = if decl.ret.is_double() {
                RegClass::Flt
            } else {
                RegClass::Int
            };
            f.ret = Some(f.new_vreg(class));
        }
        let entry = f.entry_label();
        let exit = f.add_block();
        let mut cx = FnCx {
            f,
            cur: entry,
            module,
            globals,
            funcs,
            scopes: vec![top],
            ret_ty: decl.ret.clone(),
            exit,
            loops: Vec::new(),
            str_count: 0,
        };
        for s in &decl.body {
            cx.stmt(s)?;
        }
        // Fall off the end: jump to the exit block.
        cx.terminate_with_jump(cx.exit);
        let exit = cx.exit;
        cx.f.push(exit, InstKind::Ret);
        Ok(cx.f)
    }

    // ---- small emission helpers ----

    fn emit(&mut self, kind: InstKind) {
        self.f.push(self.cur, kind);
    }

    /// Emit a jump unless the current block is already terminated.
    fn terminate_with_jump(&mut self, target: Label) {
        if self.f.block(self.cur).terminator().is_none() {
            self.f.push(self.cur, InstKind::Jump { target });
        }
    }

    fn new_block(&mut self) -> Label {
        self.f.add_block()
    }

    fn vreg(&mut self, class: RegClass) -> Reg {
        self.f.new_vreg(class)
    }

    fn class_of(ty: &Type) -> RegClass {
        if ty.is_double() {
            RegClass::Flt
        } else {
            RegClass::Int
        }
    }

    fn force_reg(&mut self, v: &Val) -> Reg {
        match v.op {
            Operand::Reg(r) => r,
            op => {
                let r = self.vreg(Self::class_of(&v.ty));
                self.emit(InstKind::Assign {
                    dst: r,
                    src: RExpr::Op(op),
                });
                r
            }
        }
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    // ---- statements ----

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Expr(e) => {
                self.rvalue(e)?;
                Ok(())
            }
            Stmt::Block(body) => {
                self.scopes.push(HashMap::new());
                for s in body {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::Decl {
                ty,
                name,
                init,
                line,
            } => self.decl(ty, name, init.as_ref(), *line),
            Stmt::If { cond, then, els } => {
                let then_l = self.new_block();
                let else_l = self.new_block();
                let end_l = if els.is_some() {
                    self.new_block()
                } else {
                    else_l
                };
                self.cond_branch(cond, then_l, else_l)?;
                self.cur = then_l;
                self.stmt(then)?;
                self.terminate_with_jump(end_l);
                if let Some(els_stmt) = els {
                    self.cur = else_l;
                    self.stmt(els_stmt)?;
                    self.terminate_with_jump(end_l);
                }
                self.cur = end_l;
                Ok(())
            }
            Stmt::While { cond, body } => self.lower_loop(None, Some(cond), None, body),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => self.lower_loop(init.as_ref(), cond.as_ref(), step.as_ref(), body),
            Stmt::DoWhile { body, cond } => {
                let body_l = self.new_block();
                let latch_l = self.new_block();
                let exit_l = self.new_block();
                self.terminate_with_jump(body_l);
                self.cur = body_l;
                self.loops.push((latch_l, exit_l));
                self.stmt(body)?;
                self.loops.pop();
                self.terminate_with_jump(latch_l);
                self.cur = latch_l;
                self.cond_branch(cond, body_l, exit_l)?;
                self.cur = exit_l;
                Ok(())
            }
            Stmt::Return(e, line) => {
                if let Some(e) = e {
                    if self.ret_ty == Type::Void {
                        return Err(CompileError::new(*line, "void function returns a value"));
                    }
                    let v = self.rvalue(e)?;
                    let v = self.convert(v, &self.ret_ty.clone())?;
                    let ret = self.f.ret.expect("non-void function has a return register");
                    self.emit(InstKind::Assign {
                        dst: ret,
                        src: RExpr::Op(v.op),
                    });
                } else if self.ret_ty != Type::Void {
                    return Err(CompileError::new(*line, "missing return value"));
                }
                let exit = self.exit;
                self.terminate_with_jump(exit);
                // Continue lowering any (dead) code after the return into a
                // fresh block.
                self.cur = self.new_block();
                Ok(())
            }
            Stmt::Break(line) => {
                let Some(&(_, brk)) = self.loops.last() else {
                    return Err(CompileError::new(*line, "break outside a loop"));
                };
                self.terminate_with_jump(brk);
                self.cur = self.new_block();
                Ok(())
            }
            Stmt::Continue(line) => {
                let Some(&(cont, _)) = self.loops.last() else {
                    return Err(CompileError::new(*line, "continue outside a loop"));
                };
                self.terminate_with_jump(cont);
                self.cur = self.new_block();
                Ok(())
            }
        }
    }

    /// Lower `for`/`while` into the guarded bottom-tested form:
    ///
    /// ```text
    ///     init
    ///     if (!cond) goto exit      -- guard
    /// body:
    ///     ...body...
    /// latch:
    ///     step
    ///     if (cond) goto body       -- bottom test
    /// exit:
    /// ```
    fn lower_loop(
        &mut self,
        init: Option<&Expr>,
        cond: Option<&Expr>,
        step: Option<&Expr>,
        body: &Stmt,
    ) -> Result<(), CompileError> {
        if let Some(init) = init {
            self.rvalue(init)?;
        }
        let body_l = self.new_block();
        let latch_l = self.new_block();
        let exit_l = self.new_block();
        match cond {
            Some(c) => self.cond_branch(c, body_l, exit_l)?,
            None => self.terminate_with_jump(body_l),
        }
        self.cur = body_l;
        self.loops.push((latch_l, exit_l));
        self.stmt(body)?;
        self.loops.pop();
        self.terminate_with_jump(latch_l);
        self.cur = latch_l;
        if let Some(step) = step {
            self.rvalue(step)?;
        }
        match cond {
            Some(c) => self.cond_branch(c, body_l, exit_l)?,
            None => self.terminate_with_jump(body_l),
        }
        self.cur = exit_l;
        Ok(())
    }

    fn decl(
        &mut self,
        ty: &Type,
        name: &str,
        init: Option<&Expr>,
        line: u32,
    ) -> Result<(), CompileError> {
        let binding = match ty {
            Type::Array(..) => {
                // Align the frame slot for the element type.
                let align = base_align(ty) as i64;
                let off = (self.f.frame_size + align - 1) / align * align;
                self.f.frame_size = off + ty.size() as i64;
                if init.is_some() {
                    return Err(CompileError::new(
                        line,
                        "local array initializers unsupported",
                    ));
                }
                Binding::FrameArray(off, ty.clone())
            }
            Type::Void => return Err(CompileError::new(line, "cannot declare void variable")),
            _ => {
                let reg = self.vreg(Self::class_of(ty));
                if let Some(e) = init {
                    let v = self.rvalue(e)?;
                    let v = self.convert(v, ty)?;
                    self.emit(InstKind::Assign {
                        dst: reg,
                        src: RExpr::Op(v.op),
                    });
                }
                Binding::Scalar(reg, ty.clone())
            }
        };
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .insert(name.to_string(), binding);
        Ok(())
    }

    // ---- conditions ----

    /// Lower `e` as a condition, branching to `t` if true and `f` if false.
    fn cond_branch(&mut self, e: &Expr, t: Label, f: Label) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Binary(BinaryOp::LogAnd, a, b) => {
                let mid = self.new_block();
                self.cond_branch(a, mid, f)?;
                self.cur = mid;
                self.cond_branch(b, t, f)
            }
            ExprKind::Binary(BinaryOp::LogOr, a, b) => {
                let mid = self.new_block();
                self.cond_branch(a, t, mid)?;
                self.cur = mid;
                self.cond_branch(b, t, f)
            }
            ExprKind::Unary(UnaryOp::LogNot, a) => self.cond_branch(a, f, t),
            ExprKind::Binary(op, a, b) if op.is_comparison() => {
                let (cmp, va, vb) = self.compare_operands(*op, a, b)?;
                let class = Self::class_of(&va.ty);
                self.emit(InstKind::Compare {
                    class,
                    op: cmp,
                    a: va.op,
                    b: vb.op,
                });
                self.emit(InstKind::Branch {
                    class,
                    when: true,
                    target: t,
                    els: f,
                });
                Ok(())
            }
            _ => {
                let v = self.rvalue(e)?;
                let class = Self::class_of(&v.ty);
                let zero = if class == RegClass::Flt {
                    Operand::FImm(0.0)
                } else {
                    Operand::Imm(0)
                };
                self.emit(InstKind::Compare {
                    class,
                    op: CmpOp::Ne,
                    a: v.op,
                    b: zero,
                });
                self.emit(InstKind::Branch {
                    class,
                    when: true,
                    target: t,
                    els: f,
                });
                Ok(())
            }
        }
    }

    /// Evaluate comparison operands with the usual arithmetic conversions.
    fn compare_operands(
        &mut self,
        op: BinaryOp,
        a: &Expr,
        b: &Expr,
    ) -> Result<(CmpOp, Val, Val), CompileError> {
        let va = self.rvalue(a)?;
        let vb = self.rvalue(b)?;
        let (va, vb) = self.usual_conversions(va, vb)?;
        let cmp = match op {
            BinaryOp::Eq => CmpOp::Eq,
            BinaryOp::Ne => CmpOp::Ne,
            BinaryOp::Lt => CmpOp::Lt,
            BinaryOp::Le => CmpOp::Le,
            BinaryOp::Gt => CmpOp::Gt,
            BinaryOp::Ge => CmpOp::Ge,
            _ => unreachable!("not a comparison"),
        };
        Ok((cmp, va, vb))
    }

    // ---- expressions ----

    fn rvalue(&mut self, e: &Expr) -> Result<Val, CompileError> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Val {
                op: Operand::Imm(*v),
                ty: Type::Int,
            }),
            ExprKind::CharLit(v) => Ok(Val {
                op: Operand::Imm(*v as i64),
                ty: Type::Int,
            }),
            ExprKind::FltLit(v) => Ok(Val {
                op: Operand::FImm(*v),
                ty: Type::Double,
            }),
            ExprKind::StrLit(s) => {
                let sym = self.intern_string(s);
                let r = self.vreg(RegClass::Int);
                self.emit(InstKind::LoadAddr {
                    dst: r,
                    sym,
                    disp: 0,
                });
                Ok(Val {
                    op: r.into(),
                    ty: Type::Ptr(Box::new(Type::Char)),
                })
            }
            ExprKind::Var(name) => self.var_rvalue(name, e.line),
            ExprKind::Index(..) | ExprKind::Unary(UnaryOp::Deref, _) => {
                let place = self.place(e)?;
                Ok(self.load_place(place))
            }
            ExprKind::Unary(UnaryOp::AddrOf, inner) => self.addr_of(inner),
            ExprKind::Unary(UnaryOp::Neg, a) => {
                let v = self.rvalue(a)?;
                match v.op {
                    Operand::Imm(x) => Ok(Val {
                        op: Operand::Imm(-x),
                        ty: v.ty,
                    }),
                    Operand::FImm(x) => Ok(Val {
                        op: Operand::FImm(-x),
                        ty: v.ty,
                    }),
                    _ => {
                        let (un, class) = if v.ty.is_double() {
                            (UnOp::FNeg, RegClass::Flt)
                        } else {
                            (UnOp::Neg, RegClass::Int)
                        };
                        let r = self.vreg(class);
                        self.emit(InstKind::Assign {
                            dst: r,
                            src: RExpr::Un(un, v.op),
                        });
                        Ok(Val {
                            op: r.into(),
                            ty: v.ty,
                        })
                    }
                }
            }
            ExprKind::Unary(UnaryOp::BitNot, a) => {
                let v = self.rvalue(a)?;
                if !v.ty.is_integral() {
                    return Err(CompileError::new(e.line, "~ requires an integer"));
                }
                let r = self.vreg(RegClass::Int);
                self.emit(InstKind::Assign {
                    dst: r,
                    src: RExpr::Un(UnOp::Not, v.op),
                });
                Ok(Val {
                    op: r.into(),
                    ty: Type::Int,
                })
            }
            ExprKind::Unary(UnaryOp::LogNot, _)
            | ExprKind::Binary(BinaryOp::LogAnd, ..)
            | ExprKind::Binary(BinaryOp::LogOr, ..) => self.bool_value(e),
            ExprKind::Binary(op, a, b) if op.is_comparison() => self.bool_value(e),
            ExprKind::Binary(op, a, b) => self.arith(*op, a, b, e.line),
            ExprKind::Assign(op, lhs, rhs) => self.assign(*op, lhs, rhs, e.line),
            ExprKind::IncDec { target, inc, post } => self.inc_dec(target, *inc, *post, e.line),
            ExprKind::Cond(c, t, f) => {
                let then_l = self.new_block();
                let else_l = self.new_block();
                let end_l = self.new_block();
                self.cond_branch(c, then_l, else_l)?;
                // Evaluate both arms into a common register. Determine the
                // result type from the arms: double if either is double.
                self.cur = then_l;
                let vt = self.rvalue(t)?;
                let t_blocks_end = self.cur;
                self.cur = else_l;
                let vf = self.rvalue(f)?;
                let f_blocks_end = self.cur;
                let ty = if vt.ty.is_double() || vf.ty.is_double() {
                    Type::Double
                } else {
                    vt.ty.clone()
                };
                let r = self.vreg(Self::class_of(&ty));
                self.cur = t_blocks_end;
                let vt = self.convert(vt, &ty)?;
                self.emit(InstKind::Assign {
                    dst: r,
                    src: RExpr::Op(vt.op),
                });
                self.terminate_with_jump(end_l);
                self.cur = f_blocks_end;
                let vf = self.convert(vf, &ty)?;
                self.emit(InstKind::Assign {
                    dst: r,
                    src: RExpr::Op(vf.op),
                });
                self.terminate_with_jump(end_l);
                self.cur = end_l;
                Ok(Val { op: r.into(), ty })
            }
            ExprKind::Cast(ty, a) => {
                let v = self.rvalue(a)?;
                let mut out = self.convert(v, ty)?;
                if *ty == Type::Char {
                    // (char) masks to a byte.
                    let r = self.vreg(RegClass::Int);
                    self.emit(InstKind::Assign {
                        dst: r,
                        src: RExpr::Bin(BinOp::And, out.op, Operand::Imm(0xff)),
                    });
                    out = Val {
                        op: r.into(),
                        ty: Type::Int,
                    };
                }
                Ok(out)
            }
            ExprKind::Call(name, args) => self.call(name, args, e.line),
        }
    }

    fn var_rvalue(&mut self, name: &str, line: u32) -> Result<Val, CompileError> {
        if let Some(b) = self.lookup(name).cloned() {
            return Ok(match b {
                Binding::Scalar(r, ty) => Val { op: r.into(), ty },
                Binding::FrameArray(off, ty) => {
                    // Array decays to a pointer: sp + off.
                    let r = self.vreg(RegClass::Int);
                    self.emit(InstKind::Assign {
                        dst: r,
                        src: RExpr::Bin(BinOp::Add, Reg::sp().into(), Operand::Imm(off)),
                    });
                    Val {
                        op: r.into(),
                        ty: ty.decayed(),
                    }
                }
            });
        }
        if let Some((sym, ty)) = self.globals.get(name).cloned() {
            return Ok(match ty {
                Type::Array(..) => {
                    let r = self.vreg(RegClass::Int);
                    self.emit(InstKind::LoadAddr {
                        dst: r,
                        sym,
                        disp: 0,
                    });
                    Val {
                        op: r.into(),
                        ty: ty.decayed(),
                    }
                }
                _ => {
                    let width = width_of(&ty);
                    let r = self.vreg(Self::class_of(&ty));
                    self.emit(InstKind::GLoad {
                        dst: r,
                        mem: MemRef::sym(sym, 0, width),
                    });
                    let ty = if ty == Type::Char { Type::Int } else { ty };
                    Val { op: r.into(), ty }
                }
            });
        }
        Err(CompileError::new(line, format!("unknown variable {name}")))
    }

    fn intern_string(&mut self, s: &str) -> SymId {
        let name = format!("str.{}.{}", self.f.name, self.str_count);
        self.str_count += 1;
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        self.module.add_data(name, bytes.len() as u64, 1, bytes)
    }

    /// Compute the address of an lvalue (`&e`).
    fn addr_of(&mut self, e: &Expr) -> Result<Val, CompileError> {
        let place = self.place(e)?;
        match place {
            Place::Reg(..) => Err(CompileError::new(
                e.line,
                "cannot take the address of a register variable",
            )),
            Place::Mem(mem, ty) => {
                let r = self.materialize_address(&mem);
                Ok(Val {
                    op: r.into(),
                    ty: Type::Ptr(Box::new(ty)),
                })
            }
        }
    }

    fn materialize_address(&mut self, mem: &MemRef) -> Reg {
        // Start from the symbolic or register base.
        let mut cur: Option<Reg> = None;
        if let Some(sym) = mem.sym {
            let r = self.vreg(RegClass::Int);
            self.emit(InstKind::LoadAddr {
                dst: r,
                sym,
                disp: 0,
            });
            cur = Some(r);
        }
        if let Some(base) = mem.base {
            cur = Some(match cur {
                None => base,
                Some(c) => {
                    let r = self.vreg(RegClass::Int);
                    self.emit(InstKind::Assign {
                        dst: r,
                        src: RExpr::Bin(BinOp::Add, c.into(), base.into()),
                    });
                    r
                }
            });
        }
        if let Some((idx, scale)) = mem.index {
            let scaled: Operand = if scale == 0 {
                idx.into()
            } else {
                let r = self.vreg(RegClass::Int);
                self.emit(InstKind::Assign {
                    dst: r,
                    src: RExpr::Bin(BinOp::Shl, idx.into(), Operand::Imm(scale as i64)),
                });
                r.into()
            };
            let r = self.vreg(RegClass::Int);
            let base: Operand = cur.map(Operand::Reg).unwrap_or(Operand::Imm(0));
            self.emit(InstKind::Assign {
                dst: r,
                src: RExpr::Bin(BinOp::Add, base, scaled),
            });
            cur = Some(r);
        }
        let mut r = cur.unwrap_or_else(|| {
            let r = self.vreg(RegClass::Int);
            self.emit(InstKind::Assign {
                dst: r,
                src: RExpr::Op(Operand::Imm(0)),
            });
            r
        });
        if mem.disp != 0 {
            let d = self.vreg(RegClass::Int);
            self.emit(InstKind::Assign {
                dst: d,
                src: RExpr::Bin(BinOp::Add, r.into(), Operand::Imm(mem.disp)),
            });
            r = d;
        }
        r
    }

    /// Resolve an lvalue expression into a place.
    fn place(&mut self, e: &Expr) -> Result<Place, CompileError> {
        match &e.kind {
            ExprKind::Var(name) => {
                if let Some(b) = self.lookup(name).cloned() {
                    return Ok(match b {
                        Binding::Scalar(r, ty) => Place::Reg(r, ty),
                        Binding::FrameArray(off, ty) => {
                            let el = ty.element().expect("array binding").clone();
                            Place::Mem(MemRef::base(Reg::sp(), off, width_of(&el)), el)
                        }
                    });
                }
                if let Some((sym, ty)) = self.globals.get(name).cloned() {
                    let width = width_of(&ty);
                    return Ok(Place::Mem(MemRef::sym(sym, 0, width), ty));
                }
                Err(CompileError::new(
                    e.line,
                    format!("unknown variable {name}"),
                ))
            }
            ExprKind::Index(base, idx) => self.index_place(base, idx, e.line),
            ExprKind::Unary(UnaryOp::Deref, inner) => {
                let p = self.rvalue(inner)?;
                let el =
                    p.ty.element()
                        .ok_or_else(|| CompileError::new(e.line, "dereference of non-pointer"))?
                        .clone();
                let base = self.force_reg(&p);
                Ok(Place::Mem(MemRef::base(base, 0, width_of(&el)), el))
            }
            _ => Err(CompileError::new(e.line, "expression is not assignable")),
        }
    }

    /// Resolve `base[idx]` into a memory place.
    fn index_place(&mut self, base: &Expr, idx: &Expr, line: u32) -> Result<Place, CompileError> {
        // Global array indexed directly: use the symbolic form so the
        // optimizer sees `_x + i<<3` style references. Local frame arrays
        // similarly index straight off the stack pointer.
        if let ExprKind::Var(name) = &base.kind {
            match self.lookup(name).cloned() {
                Some(Binding::FrameArray(off, Type::Array(el, _))) => {
                    return self.finish_index(
                        MemRef::base(Reg::sp(), off, width_of(&el)),
                        *el,
                        idx,
                        line,
                    );
                }
                None => {
                    if let Some((sym, Type::Array(el, _))) = self.globals.get(name).cloned() {
                        return self.finish_index(
                            MemRef::sym(sym, 0, width_of(&el)),
                            *el,
                            idx,
                            line,
                        );
                    }
                }
                _ => {}
            }
        }
        let b = self.rvalue(base)?;
        let el =
            b.ty.element()
                .ok_or_else(|| CompileError::new(line, "indexing a non-pointer"))?
                .clone();
        let base_reg = self.force_reg(&b);
        self.finish_index(MemRef::base(base_reg, 0, width_of(&el)), el, idx, line)
    }

    fn finish_index(
        &mut self,
        mut mem: MemRef,
        el: Type,
        idx: &Expr,
        line: u32,
    ) -> Result<Place, CompileError> {
        let iv = self.rvalue(idx)?;
        if !iv.ty.is_integral() {
            return Err(CompileError::new(
                line,
                "array subscript must be an integer",
            ));
        }
        match iv.op {
            Operand::Imm(k) => {
                mem.disp += k * el.size() as i64;
            }
            _ => {
                let r = self.force_reg(&iv);
                let scale = el.size().trailing_zeros() as u8;
                mem.index = Some((r, scale));
            }
        }
        Ok(Place::Mem(mem, el))
    }

    fn load_place(&mut self, place: Place) -> Val {
        match place {
            Place::Reg(r, ty) => Val { op: r.into(), ty },
            Place::Mem(mem, ty) => {
                let r = self.vreg(Self::class_of(&ty));
                self.emit(InstKind::GLoad { dst: r, mem });
                // chars widen to int when loaded
                let ty = if ty == Type::Char { Type::Int } else { ty };
                Val { op: r.into(), ty }
            }
        }
    }

    fn store_place(&mut self, place: &Place, v: Val) -> Result<Val, CompileError> {
        match place {
            Place::Reg(r, ty) => {
                let v = self.convert(v, ty)?;
                self.emit(InstKind::Assign {
                    dst: *r,
                    src: RExpr::Op(v.op),
                });
                Ok(Val {
                    op: (*r).into(),
                    ty: ty.clone(),
                })
            }
            Place::Mem(mem, ty) => {
                let v = self.convert(v, ty)?;
                self.emit(InstKind::GStore {
                    src: v.op,
                    mem: mem.clone(),
                });
                Ok(v)
            }
        }
    }

    // ---- conversions ----

    /// Convert `v` to type `to` (int↔double, char→int; pointers pass
    /// through as integers).
    fn convert(&mut self, v: Val, to: &Type) -> Result<Val, CompileError> {
        let to = to.clone();
        if v.ty.is_double() == to.is_double() {
            return Ok(Val { op: v.op, ty: to });
        }
        if to.is_double() {
            // int -> double
            let op = match v.op {
                Operand::Imm(x) => Operand::FImm(x as f64),
                op => {
                    let r = self.vreg(RegClass::Flt);
                    self.emit(InstKind::Assign {
                        dst: r,
                        src: RExpr::Un(UnOp::IntToFlt, op),
                    });
                    r.into()
                }
            };
            Ok(Val { op, ty: to })
        } else {
            // double -> int
            let op = match v.op {
                Operand::FImm(x) => Operand::Imm(x as i64),
                op => {
                    let r = self.vreg(RegClass::Int);
                    self.emit(InstKind::Assign {
                        dst: r,
                        src: RExpr::Un(UnOp::FltToInt, op),
                    });
                    r.into()
                }
            };
            Ok(Val { op, ty: to })
        }
    }

    /// The usual arithmetic conversions: if either side is double, both
    /// become double.
    fn usual_conversions(&mut self, a: Val, b: Val) -> Result<(Val, Val), CompileError> {
        if a.ty.is_double() || b.ty.is_double() {
            let a = self.convert(a, &Type::Double)?;
            let b = self.convert(b, &Type::Double)?;
            Ok((a, b))
        } else {
            Ok((a, b))
        }
    }

    // ---- operators ----

    fn arith(&mut self, op: BinaryOp, a: &Expr, b: &Expr, line: u32) -> Result<Val, CompileError> {
        let va = self.rvalue(a)?;
        let vb = self.rvalue(b)?;

        // Pointer arithmetic: p + i and p - i scale by the element size.
        if let Some(el) = va.ty.element().cloned() {
            if matches!(op, BinaryOp::Add | BinaryOp::Sub) && vb.ty.is_integral() {
                return self.pointer_arith(op, va, vb, el, line);
            }
        }
        if let Some(el) = vb.ty.element().cloned() {
            if op == BinaryOp::Add && va.ty.is_integral() {
                return self.pointer_arith(op, vb, va, el, line);
            }
        }

        let (va, vb) = self.usual_conversions(va, vb)?;
        let double = va.ty.is_double();
        let bin = match (op, double) {
            (BinaryOp::Add, false) => BinOp::Add,
            (BinaryOp::Sub, false) => BinOp::Sub,
            (BinaryOp::Mul, false) => BinOp::Mul,
            (BinaryOp::Div, false) => BinOp::Div,
            (BinaryOp::Rem, false) => BinOp::Rem,
            (BinaryOp::Shl, false) => BinOp::Shl,
            (BinaryOp::Shr, false) => BinOp::Shr,
            (BinaryOp::BitAnd, false) => BinOp::And,
            (BinaryOp::BitOr, false) => BinOp::Or,
            (BinaryOp::BitXor, false) => BinOp::Xor,
            (BinaryOp::Add, true) => BinOp::FAdd,
            (BinaryOp::Sub, true) => BinOp::FSub,
            (BinaryOp::Mul, true) => BinOp::FMul,
            (BinaryOp::Div, true) => BinOp::FDiv,
            _ => {
                return Err(CompileError::new(
                    line,
                    format!("operator {op:?} not defined for these operands"),
                ))
            }
        };
        // Constant folding at lowering keeps the naive code tidy; the
        // optimizer folds anything that remains.
        if let (Operand::Imm(x), Operand::Imm(y)) = (va.op, vb.op) {
            if let Some(v) = bin.fold_int(x, y) {
                return Ok(Val {
                    op: Operand::Imm(v),
                    ty: va.ty,
                });
            }
        }
        let class = if double { RegClass::Flt } else { RegClass::Int };
        let r = self.vreg(class);
        self.emit(InstKind::Assign {
            dst: r,
            src: RExpr::Bin(bin, va.op, vb.op),
        });
        Ok(Val {
            op: r.into(),
            ty: va.ty,
        })
    }

    fn pointer_arith(
        &mut self,
        op: BinaryOp,
        ptr: Val,
        int: Val,
        el: Type,
        _line: u32,
    ) -> Result<Val, CompileError> {
        let size = el.size() as i64;
        let scaled: Operand = match int.op {
            Operand::Imm(k) => Operand::Imm(k * size),
            _ => {
                let i = self.force_reg(&int);
                if size == 1 {
                    i.into()
                } else {
                    let r = self.vreg(RegClass::Int);
                    self.emit(InstKind::Assign {
                        dst: r,
                        src: RExpr::Bin(
                            BinOp::Shl,
                            i.into(),
                            Operand::Imm(size.trailing_zeros() as i64),
                        ),
                    });
                    r.into()
                }
            }
        };
        let bin = if op == BinaryOp::Add {
            BinOp::Add
        } else {
            BinOp::Sub
        };
        let r = self.vreg(RegClass::Int);
        self.emit(InstKind::Assign {
            dst: r,
            src: RExpr::Bin(bin, ptr.op, scaled),
        });
        Ok(Val {
            op: r.into(),
            ty: ptr.ty,
        })
    }

    /// Materialize a boolean-valued expression as 0/1.
    fn bool_value(&mut self, e: &Expr) -> Result<Val, CompileError> {
        let one_l = self.new_block();
        let zero_l = self.new_block();
        let end_l = self.new_block();
        let r = self.vreg(RegClass::Int);
        self.cond_branch(e, one_l, zero_l)?;
        self.cur = one_l;
        self.emit(InstKind::Assign {
            dst: r,
            src: RExpr::Op(Operand::Imm(1)),
        });
        self.terminate_with_jump(end_l);
        self.cur = zero_l;
        self.emit(InstKind::Assign {
            dst: r,
            src: RExpr::Op(Operand::Imm(0)),
        });
        self.terminate_with_jump(end_l);
        self.cur = end_l;
        Ok(Val {
            op: r.into(),
            ty: Type::Int,
        })
    }

    fn assign(
        &mut self,
        op: AssignOp,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> Result<Val, CompileError> {
        let place = self.place(lhs)?;
        let rv = self.rvalue(rhs)?;
        let v = if op == AssignOp::Eq {
            rv
        } else {
            let old = self.load_place(place.clone());
            let (old, rv) = self.usual_conversions(old, rv)?;
            let double = old.ty.is_double();
            let bin = match (op, double) {
                (AssignOp::Add, false) => BinOp::Add,
                (AssignOp::Sub, false) => BinOp::Sub,
                (AssignOp::Mul, false) => BinOp::Mul,
                (AssignOp::Div, false) => BinOp::Div,
                (AssignOp::Rem, false) => BinOp::Rem,
                (AssignOp::Add, true) => BinOp::FAdd,
                (AssignOp::Sub, true) => BinOp::FSub,
                (AssignOp::Mul, true) => BinOp::FMul,
                (AssignOp::Div, true) => BinOp::FDiv,
                (AssignOp::Rem, true) => {
                    return Err(CompileError::new(line, "%= requires integers"))
                }
                (AssignOp::Eq, _) => unreachable!(),
            };
            let class = if double { RegClass::Flt } else { RegClass::Int };
            let r = self.vreg(class);
            self.emit(InstKind::Assign {
                dst: r,
                src: RExpr::Bin(bin, old.op, rv.op),
            });
            Val {
                op: r.into(),
                ty: old.ty,
            }
        };
        self.store_place(&place, v)
    }

    fn inc_dec(
        &mut self,
        target: &Expr,
        inc: bool,
        post: bool,
        _line: u32,
    ) -> Result<Val, CompileError> {
        let place = self.place(target)?;
        let old = self.load_place(place.clone());
        let step: i64 = match old.ty.element() {
            Some(el) => el.size() as i64,
            None => 1,
        };
        let bin = if old.ty.is_double() {
            if inc {
                BinOp::FAdd
            } else {
                BinOp::FSub
            }
        } else if inc {
            BinOp::Add
        } else {
            BinOp::Sub
        };
        let step_op = if old.ty.is_double() {
            Operand::FImm(step as f64)
        } else {
            Operand::Imm(step)
        };
        let class = Self::class_of(&old.ty);
        if let Place::Reg(r, ty) = &place {
            // Update register variables in place (`i := (i) + 1`), which is
            // the basic-induction-variable shape the loop analyses expect.
            let ty = ty.clone();
            let oldv = if post {
                let o = self.vreg(class);
                self.emit(InstKind::Assign {
                    dst: o,
                    src: RExpr::Op(old.op),
                });
                Some(o)
            } else {
                None
            };
            let r = *r;
            self.emit(InstKind::Assign {
                dst: r,
                src: RExpr::Bin(bin, r.into(), step_op),
            });
            return Ok(Val {
                op: match oldv {
                    Some(o) => o.into(),
                    None => r.into(),
                },
                ty,
            });
        }
        let newv = self.vreg(class);
        // Keep the old value in its own register so post-increment returns
        // it even when the place is the same register.
        let oldv = self.vreg(class);
        self.emit(InstKind::Assign {
            dst: oldv,
            src: RExpr::Op(old.op),
        });
        self.emit(InstKind::Assign {
            dst: newv,
            src: RExpr::Bin(bin, oldv.into(), step_op),
        });
        self.store_place(
            &place,
            Val {
                op: newv.into(),
                ty: old.ty.clone(),
            },
        )?;
        Ok(Val {
            op: if post { oldv.into() } else { newv.into() },
            ty: old.ty,
        })
    }

    fn call(&mut self, name: &str, args: &[Expr], line: u32) -> Result<Val, CompileError> {
        let sig = self
            .funcs
            .get(name)
            .ok_or_else(|| CompileError::new(line, format!("unknown function {name}")))?
            .clone();
        if args.len() != sig.params.len() {
            return Err(CompileError::new(
                line,
                format!(
                    "{name} expects {} arguments, got {}",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        let mut arg_regs = Vec::with_capacity(args.len());
        for (a, pty) in args.iter().zip(&sig.params) {
            let v = self.rvalue(a)?;
            let v = self.convert(v, pty)?;
            let r = self.vreg(Self::class_of(pty));
            self.emit(InstKind::Assign {
                dst: r,
                src: RExpr::Op(v.op),
            });
            arg_regs.push(r);
        }
        let ret = if sig.ret == Type::Void {
            None
        } else {
            Some(self.vreg(Self::class_of(&sig.ret)))
        };
        self.emit(InstKind::Call {
            callee: sig.sym,
            args: arg_regs,
            ret,
        });
        Ok(match ret {
            Some(r) => Val {
                op: r.into(),
                ty: sig.ret,
            },
            None => Val {
                op: Operand::Imm(0),
                ty: Type::Void,
            },
        })
    }
}

fn width_of(ty: &Type) -> Width {
    match ty {
        Type::Char => Width::B1,
        Type::Double => Width::D8,
        Type::Int | Type::Ptr(_) => Width::W4,
        Type::Void => Width::W4,
        Type::Array(el, _) => width_of(el),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower_src(src: &str) -> Module {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn livermore_loop5_lowers() {
        let m = lower_src(
            r"
            double x[1000]; double y[1000]; double z[1000];
            void loop5(int n) {
                int i;
                for (i = 2; i < n; i++)
                    x[i] = z[i] * (y[i] - x[i-1]);
            }
        ",
        );
        let f = m.function_named("loop5").unwrap();
        // guarded bottom-tested loop: entry, exit, body, latch, loop-exit
        assert!(f.blocks.len() >= 5);
        // four memory references in the loop body
        let mems: usize = f.insts().filter(|i| i.kind.mem_access().is_some()).count();
        assert_eq!(mems, 4);
        let listing = f.display(Some(&m)).to_string();
        assert!(listing.contains("_x"), "{listing}");
    }

    #[test]
    fn returns_and_conversions() {
        let m = lower_src("double half(int n) { return n / 2; }");
        let f = m.function_named("half").unwrap();
        assert!(f.ret.is_some());
        // must contain an IntToFlt conversion
        assert!(f.insts().any(|i| matches!(
            &i.kind,
            InstKind::Assign {
                src: RExpr::Un(UnOp::IntToFlt, _),
                ..
            }
        )));
    }

    #[test]
    fn pointer_walk() {
        let m = lower_src("int strcpy0(char *d, char *s) { while ((*d++ = *s++)) ; return 0; }");
        let f = m.function_named("strcpy0").unwrap();
        let loads = f
            .insts()
            .filter(|i| matches!(i.kind, InstKind::GLoad { .. }))
            .count();
        let stores = f
            .insts()
            .filter(|i| matches!(i.kind, InstKind::GStore { .. }))
            .count();
        assert!(loads >= 1 && stores >= 1);
    }

    #[test]
    fn calls_and_builtins() {
        let m = lower_src("void emit(int c) { putchar(c + 1); }");
        let f = m.function_named("emit").unwrap();
        assert!(f.insts().any(|i| matches!(i.kind, InstKind::Call { .. })));
    }

    #[test]
    fn global_initializers() {
        let m = lower_src(r#"int tab[] = {1,2,3}; double pi = 3.5; char msg[] = "ab";"#);
        match &m.global(m.lookup("tab").unwrap()).kind {
            wm_ir::GlobalKind::Data { size, init, .. } => {
                assert_eq!(*size, 12);
                assert_eq!(init, &vec![1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0]);
            }
            _ => unreachable!(),
        }
        match &m.global(m.lookup("pi").unwrap()).kind {
            wm_ir::GlobalKind::Data { init, .. } => {
                assert_eq!(init, &3.5f64.to_le_bytes().to_vec());
            }
            _ => unreachable!(),
        }
        match &m.global(m.lookup("msg").unwrap()).kind {
            wm_ir::GlobalKind::Data { size, init, .. } => {
                assert_eq!(*size, 3);
                assert_eq!(init, b"ab\0");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn local_arrays_use_the_frame() {
        let m = lower_src("int f() { int a[10]; a[3] = 7; return a[3]; }");
        let f = m.function_named("f").unwrap();
        assert_eq!(f.frame_size, 40);
        assert!(f.insts().any(|i| matches!(
            &i.kind,
            InstKind::GStore { mem, .. } if mem.base == Some(Reg::sp())
        )));
    }

    #[test]
    fn semantic_errors() {
        let p = parse("int f() { return g(); }").unwrap();
        assert!(lower(&p).is_err());
        let p = parse("void f() { return 1; }").unwrap();
        assert!(lower(&p).is_err());
        let p = parse("int f() { break; }").unwrap();
        assert!(lower(&p).is_err());
        let p = parse("int f(int x) { int *p; p = &x; return 0; }").unwrap();
        assert!(lower(&p).is_err(), "address of register variable");
    }

    #[test]
    fn short_circuit_and_ternary() {
        let m = lower_src("int f(int a, int b) { int c; c = a && b; return c ? a : b; }");
        let f = m.function_named("f").unwrap();
        assert!(f.blocks.len() >= 6);
    }

    #[test]
    fn string_literals_become_globals() {
        let m = lower_src(r#"void f() { putstr("hi"); } void putstr(char *s) { }"#);
        assert!(m.lookup("str.f.0").is_some());
    }

    #[test]
    fn compound_assign_and_incdec() {
        let m = lower_src(
            "int sum(int *a, int n) { int s; int i; s = 0; for (i = 0; i < n; i++) s += a[i]; return s; }",
        );
        let f = m.function_named("sum").unwrap();
        assert!(f.insts().any(|i| matches!(
            &i.kind,
            InstKind::Assign {
                src: RExpr::Bin(BinOp::Add, _, _),
                ..
            }
        )));
    }
}
