//! Lexer for mini-C.

use crate::error::CompileError;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // literals and identifiers
    Ident(String),
    IntLit(i64),
    FltLit(f64),
    CharLit(u8),
    StrLit(String),
    // keywords
    KwInt,
    KwChar,
    KwDouble,
    KwVoid,
    KwIf,
    KwElse,
    KwWhile,
    KwDo,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    // punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Question,
    Colon,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    Eof,
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// Streaming lexer over mini-C source text.
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `source`.
    pub fn new(source: &'a str) -> Lexer<'a> {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Tokenize the whole input.
    ///
    /// # Errors
    ///
    /// Returns an error for unterminated literals/comments or stray
    /// characters.
    pub fn tokenize(mut self) -> Result<Vec<Token>, CompileError> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let eof = t.kind == TokenKind::Eof;
            out.push(t);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(CompileError::new(start, "unterminated comment"));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, CompileError> {
        self.skip_trivia()?;
        let line = self.line;
        let mk = |kind| Token { kind, line };
        if self.pos >= self.src.len() {
            return Ok(mk(TokenKind::Eof));
        }
        let c = self.peek();
        // identifiers / keywords
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
                self.bump();
            }
            let word = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
            let kind = match word {
                "int" => TokenKind::KwInt,
                "char" => TokenKind::KwChar,
                "double" => TokenKind::KwDouble,
                "void" => TokenKind::KwVoid,
                "if" => TokenKind::KwIf,
                "else" => TokenKind::KwElse,
                "while" => TokenKind::KwWhile,
                "do" => TokenKind::KwDo,
                "for" => TokenKind::KwFor,
                "return" => TokenKind::KwReturn,
                "break" => TokenKind::KwBreak,
                "continue" => TokenKind::KwContinue,
                _ => TokenKind::Ident(word.to_string()),
            };
            return Ok(mk(kind));
        }
        // numbers
        if c.is_ascii_digit() {
            return self.lex_number().map(|kind| Token { kind, line });
        }
        // char literal
        if c == b'\'' {
            self.bump();
            let v = self.lex_char_escape(b'\'')?;
            if self.bump() != b'\'' {
                return Err(CompileError::new(line, "unterminated character literal"));
            }
            return Ok(mk(TokenKind::CharLit(v)));
        }
        // string literal
        if c == b'"' {
            self.bump();
            let mut s = String::new();
            loop {
                if self.pos >= self.src.len() {
                    return Err(CompileError::new(line, "unterminated string literal"));
                }
                if self.peek() == b'"' {
                    self.bump();
                    break;
                }
                let v = self.lex_char_escape(b'"')?;
                s.push(v as char);
            }
            return Ok(mk(TokenKind::StrLit(s)));
        }
        // operators
        self.bump();
        let two = |l: &mut Lexer<'a>, next: u8, yes: TokenKind, no: TokenKind| {
            if l.peek() == next {
                l.bump();
                yes
            } else {
                no
            }
        };
        let kind = match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'?' => TokenKind::Question,
            b':' => TokenKind::Colon,
            b'~' => TokenKind::Tilde,
            b'^' => TokenKind::Caret,
            b'+' => match self.peek() {
                b'+' => {
                    self.bump();
                    TokenKind::PlusPlus
                }
                b'=' => {
                    self.bump();
                    TokenKind::PlusAssign
                }
                _ => TokenKind::Plus,
            },
            b'-' => match self.peek() {
                b'-' => {
                    self.bump();
                    TokenKind::MinusMinus
                }
                b'=' => {
                    self.bump();
                    TokenKind::MinusAssign
                }
                _ => TokenKind::Minus,
            },
            b'*' => two(self, b'=', TokenKind::StarAssign, TokenKind::Star),
            b'/' => two(self, b'=', TokenKind::SlashAssign, TokenKind::Slash),
            b'%' => two(self, b'=', TokenKind::PercentAssign, TokenKind::Percent),
            b'=' => two(self, b'=', TokenKind::Eq, TokenKind::Assign),
            b'!' => two(self, b'=', TokenKind::Ne, TokenKind::Not),
            b'<' => match self.peek() {
                b'=' => {
                    self.bump();
                    TokenKind::Le
                }
                b'<' => {
                    self.bump();
                    TokenKind::Shl
                }
                _ => TokenKind::Lt,
            },
            b'>' => match self.peek() {
                b'=' => {
                    self.bump();
                    TokenKind::Ge
                }
                b'>' => {
                    self.bump();
                    TokenKind::Shr
                }
                _ => TokenKind::Gt,
            },
            b'&' => two(self, b'&', TokenKind::AndAnd, TokenKind::Amp),
            b'|' => two(self, b'|', TokenKind::OrOr, TokenKind::Pipe),
            other => {
                return Err(CompileError::new(
                    line,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        };
        Ok(mk(kind))
    }

    fn lex_number(&mut self) -> Result<TokenKind, CompileError> {
        let start = self.pos;
        let line = self.line;
        // hex
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.bump();
            self.bump();
            let hs = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[hs..self.pos]).unwrap();
            let v = i64::from_str_radix(text, 16)
                .map_err(|_| CompileError::new(line, "invalid hex literal"))?;
            return Ok(TokenKind::IntLit(v));
        }
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if self.peek() == b'e' || self.peek() == b'E' {
            let save = self.pos;
            self.bump();
            if self.peek() == b'+' || self.peek() == b'-' {
                self.bump();
            }
            if self.peek().is_ascii_digit() {
                is_float = true;
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            } else {
                self.pos = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::FltLit)
                .map_err(|_| CompileError::new(line, "invalid float literal"))
        } else {
            text.parse::<i64>()
                .map(TokenKind::IntLit)
                .map_err(|_| CompileError::new(line, "integer literal out of range"))
        }
    }

    fn lex_char_escape(&mut self, _quote: u8) -> Result<u8, CompileError> {
        let line = self.line;
        let c = self.bump();
        if c != b'\\' {
            return Ok(c);
        }
        let e = self.bump();
        Ok(match e {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            other => {
                return Err(CompileError::new(
                    line,
                    format!("unknown escape \\{}", other as char),
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("int x while whilex"),
            vec![
                TokenKind::KwInt,
                TokenKind::Ident("x".into()),
                TokenKind::KwWhile,
                TokenKind::Ident("whilex".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.5 1e3 0x1f 7e"),
            vec![
                TokenKind::IntLit(42),
                TokenKind::FltLit(3.5),
                TokenKind::FltLit(1000.0),
                TokenKind::IntLit(31),
                TokenKind::IntLit(7),
                TokenKind::Ident("e".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a += b++ << c <= d && e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::PlusAssign,
                TokenKind::Ident("b".into()),
                TokenKind::PlusPlus,
                TokenKind::Shl,
                TokenKind::Ident("c".into()),
                TokenKind::Le,
                TokenKind::Ident("d".into()),
                TokenKind::AndAnd,
                TokenKind::Ident("e".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn char_and_string_literals() {
        assert_eq!(
            kinds(r#"'a' '\n' "hi\n""#),
            vec![
                TokenKind::CharLit(b'a'),
                TokenKind::CharLit(b'\n'),
                TokenKind::StrLit("hi\n".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = Lexer::new("a // one\n/* two\nlines */ b")
            .tokenize()
            .unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn errors() {
        assert!(Lexer::new("\"unterminated").tokenize().is_err());
        assert!(Lexer::new("/* open").tokenize().is_err());
        assert!(Lexer::new("$").tokenize().is_err());
        assert!(Lexer::new("'ab").tokenize().is_err());
    }
}
