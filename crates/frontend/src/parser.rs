//! Recursive-descent parser for mini-C.

use crate::ast::*;
use crate::error::CompileError;
use crate::lexer::{Lexer, Token, TokenKind};

/// Parse mini-C source into a [`Program`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let tokens = Lexer::new(source).tokenize()?;
    Parser {
        tokens,
        pos: 0,
        depth: 0,
    }
    .program()
}

/// Maximum expression/statement nesting depth. Recursive descent uses the
/// host stack; beyond this the parser reports an error instead of
/// overflowing.
const MAX_DEPTH: usize = 120;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), CompileError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(CompileError::new(
                self.line(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn error<T>(&self, msg: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError::new(self.line(), msg.into()))
    }

    fn enter(&mut self) -> Result<(), CompileError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(CompileError::new(self.line(), "nesting too deep"));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    // ---- types ----

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwInt | TokenKind::KwChar | TokenKind::KwDouble | TokenKind::KwVoid
        )
    }

    fn base_type(&mut self) -> Result<Type, CompileError> {
        let t = match self.bump() {
            TokenKind::KwInt => Type::Int,
            TokenKind::KwChar => Type::Char,
            TokenKind::KwDouble => Type::Double,
            TokenKind::KwVoid => Type::Void,
            other => {
                return Err(CompileError::new(
                    self.line(),
                    format!("expected type, found {other:?}"),
                ))
            }
        };
        Ok(t)
    }

    fn pointered(&mut self, mut t: Type) -> Type {
        while self.eat(&TokenKind::Star) {
            t = Type::Ptr(Box::new(t));
        }
        t
    }

    // ---- program structure ----

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut items = Vec::new();
        while *self.peek() != TokenKind::Eof {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> Result<Item, CompileError> {
        let line = self.line();
        if !self.is_type_start() {
            return self.error("expected a declaration");
        }
        let base = self.base_type()?;
        let ty = self.pointered(base);
        let name = self.ident()?;
        if *self.peek() == TokenKind::LParen {
            self.func(ty, name, line).map(Item::Func)
        } else {
            self.global(ty, name, line)
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(CompileError::new(
                self.line(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn func(&mut self, ret: Type, name: String, line: u32) -> Result<FuncDecl, CompileError> {
        self.expect(&TokenKind::LParen, "'('")?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            if *self.peek() == TokenKind::KwVoid
                && self.tokens[self.pos + 1].kind == TokenKind::RParen
            {
                self.bump();
                self.bump();
            } else {
                loop {
                    let base = self.base_type()?;
                    let ty = self.pointered(base);
                    let pname = self.ident()?;
                    // `double a[]` parameter form decays to pointer
                    let ty = if self.eat(&TokenKind::LBracket) {
                        self.expect(&TokenKind::RBracket, "']'")?;
                        Type::Ptr(Box::new(ty))
                    } else {
                        ty
                    };
                    params.push((ty, pname));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen, "')'")?;
            }
        }
        // a trailing semicolon makes this a prototype
        if self.eat(&TokenKind::Semi) {
            return Ok(FuncDecl {
                name,
                ret,
                params,
                body: Vec::new(),
                line,
                is_prototype: true,
            });
        }
        self.expect(&TokenKind::LBrace, "'{'")?;
        let mut body = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            body.push(self.stmt()?);
        }
        Ok(FuncDecl {
            name,
            ret,
            params,
            body,
            line,
            is_prototype: false,
        })
    }

    fn global(&mut self, ty: Type, name: String, line: u32) -> Result<Item, CompileError> {
        // optional array declarator
        let ty = if self.eat(&TokenKind::LBracket) {
            if self.eat(&TokenKind::RBracket) {
                // size from initializer
                Type::Array(Box::new(ty), 0)
            } else {
                let n = self.const_index()?;
                self.expect(&TokenKind::RBracket, "']'")?;
                Type::Array(Box::new(ty), n)
            }
        } else {
            ty
        };
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.initializer()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi, "';'")?;
        // fix up unsized arrays from initializer length
        let ty = match (&ty, &init) {
            (Type::Array(el, 0), Some(Init::Str(s))) => Type::Array(el.clone(), s.len() + 1),
            (Type::Array(el, 0), Some(Init::List(es))) => Type::Array(el.clone(), es.len()),
            _ => ty,
        };
        Ok(Item::Global {
            ty,
            name,
            init,
            line,
        })
    }

    fn const_index(&mut self) -> Result<usize, CompileError> {
        // Array sizes must be integer literals (possibly a product like
        // `100 * 1000` is *not* supported; keep declarations simple).
        match self.bump() {
            TokenKind::IntLit(v) if v >= 0 => Ok(v as usize),
            other => Err(CompileError::new(
                self.line(),
                format!("expected constant array size, found {other:?}"),
            )),
        }
    }

    fn initializer(&mut self) -> Result<Init, CompileError> {
        match self.peek().clone() {
            TokenKind::LBrace => {
                self.bump();
                let mut es = Vec::new();
                if !self.eat(&TokenKind::RBrace) {
                    loop {
                        es.push(self.assignment()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        if *self.peek() == TokenKind::RBrace {
                            break; // trailing comma
                        }
                    }
                    self.expect(&TokenKind::RBrace, "'}'")?;
                }
                Ok(Init::List(es))
            }
            TokenKind::StrLit(s) => {
                self.bump();
                Ok(Init::Str(s))
            }
            _ => Ok(Init::Scalar(self.assignment()?)),
        }
    }

    // ---- statements ----

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        self.enter()?;
        let r = self.stmt_inner();
        self.leave();
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            TokenKind::LBrace => {
                self.bump();
                let mut body = Vec::new();
                while !self.eat(&TokenKind::RBrace) {
                    body.push(self.stmt()?);
                }
                Ok(Stmt::Block(body))
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(&TokenKind::LParen, "'('")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                let then = Box::new(self.stmt()?);
                let els = if self.eat(&TokenKind::KwElse) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If { cond, then, els })
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen, "'('")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While { cond, body })
            }
            TokenKind::KwDo => {
                self.bump();
                let body = Box::new(self.stmt()?);
                if !self.eat(&TokenKind::KwWhile) {
                    return self.error("expected 'while' after do-body");
                }
                self.expect(&TokenKind::LParen, "'('")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::DoWhile { body, cond })
            }
            TokenKind::KwFor => {
                self.bump();
                self.expect(&TokenKind::LParen, "'('")?;
                let init = if *self.peek() == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi, "';'")?;
                let cond = if *self.peek() == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi, "';'")?;
                let step = if *self.peek() == TokenKind::RParen {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::RParen, "')'")?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            TokenKind::KwReturn => {
                self.bump();
                let e = if *self.peek() == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::Return(e, line))
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::Break(line))
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::Continue(line))
            }
            _ if self.is_type_start() => {
                let base = self.base_type()?;
                let ty = self.pointered(base);
                let name = self.ident()?;
                let ty = if self.eat(&TokenKind::LBracket) {
                    let n = self.const_index()?;
                    self.expect(&TokenKind::RBracket, "']'")?;
                    Type::Array(Box::new(ty), n)
                } else {
                    ty
                };
                let init = if self.eat(&TokenKind::Assign) {
                    Some(self.assignment()?)
                } else {
                    None
                };
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::Decl {
                    ty,
                    name,
                    init,
                    line,
                })
            }
            _ => {
                let e = self.expr()?;
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, CompileError> {
        self.enter()?;
        let r = self.assignment_inner();
        self.leave();
        r
    }

    fn assignment_inner(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let lhs = self.ternary()?;
        let op = match self.peek() {
            TokenKind::Assign => Some(AssignOp::Eq),
            TokenKind::PlusAssign => Some(AssignOp::Add),
            TokenKind::MinusAssign => Some(AssignOp::Sub),
            TokenKind::StarAssign => Some(AssignOp::Mul),
            TokenKind::SlashAssign => Some(AssignOp::Div),
            TokenKind::PercentAssign => Some(AssignOp::Rem),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.assignment()?;
            Ok(Expr {
                kind: ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)),
                line,
            })
        } else {
            Ok(lhs)
        }
    }

    fn ternary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let cond = self.binary(0)?;
        if self.eat(&TokenKind::Question) {
            let t = self.expr()?;
            self.expect(&TokenKind::Colon, "':'")?;
            let e = self.ternary()?;
            Ok(Expr {
                kind: ExprKind::Cond(Box::new(cond), Box::new(t), Box::new(e)),
                line,
            })
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing over binary operators; `min_prec` 0 is `||`.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::OrOr => (BinaryOp::LogOr, 0),
                TokenKind::AndAnd => (BinaryOp::LogAnd, 1),
                TokenKind::Pipe => (BinaryOp::BitOr, 2),
                TokenKind::Caret => (BinaryOp::BitXor, 3),
                TokenKind::Amp => (BinaryOp::BitAnd, 4),
                TokenKind::Eq => (BinaryOp::Eq, 5),
                TokenKind::Ne => (BinaryOp::Ne, 5),
                TokenKind::Lt => (BinaryOp::Lt, 6),
                TokenKind::Le => (BinaryOp::Le, 6),
                TokenKind::Gt => (BinaryOp::Gt, 6),
                TokenKind::Ge => (BinaryOp::Ge, 6),
                TokenKind::Shl => (BinaryOp::Shl, 7),
                TokenKind::Shr => (BinaryOp::Shr, 7),
                TokenKind::Plus => (BinaryOp::Add, 8),
                TokenKind::Minus => (BinaryOp::Sub, 8),
                TokenKind::Star => (BinaryOp::Mul, 9),
                TokenKind::Slash => (BinaryOp::Div, 9),
                TokenKind::Percent => (BinaryOp::Rem, 9),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        // cast: '(' type ')' unary
        if *self.peek() == TokenKind::LParen {
            if let TokenKind::KwInt | TokenKind::KwChar | TokenKind::KwDouble | TokenKind::KwVoid =
                self.tokens[self.pos + 1].kind
            {
                self.bump(); // (
                let base = self.base_type()?;
                let ty = self.pointered(base);
                self.expect(&TokenKind::RParen, "')'")?;
                let e = self.unary()?;
                return Ok(Expr {
                    kind: ExprKind::Cast(ty, Box::new(e)),
                    line,
                });
            }
        }
        let op = match self.peek() {
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Not => Some(UnaryOp::LogNot),
            TokenKind::Tilde => Some(UnaryOp::BitNot),
            TokenKind::Star => Some(UnaryOp::Deref),
            TokenKind::Amp => Some(UnaryOp::AddrOf),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Unary(op, Box::new(e)),
                line,
            });
        }
        if self.eat(&TokenKind::PlusPlus) {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::IncDec {
                    target: Box::new(e),
                    inc: true,
                    post: false,
                },
                line,
            });
        }
        if self.eat(&TokenKind::MinusMinus) {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::IncDec {
                    target: Box::new(e),
                    inc: false,
                    post: false,
                },
                line,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            match self.peek() {
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&TokenKind::RBracket, "']'")?;
                    e = Expr {
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                        line,
                    };
                }
                TokenKind::PlusPlus => {
                    self.bump();
                    e = Expr {
                        kind: ExprKind::IncDec {
                            target: Box::new(e),
                            inc: true,
                            post: true,
                        },
                        line,
                    };
                }
                TokenKind::MinusMinus => {
                    self.bump();
                    e = Expr {
                        kind: ExprKind::IncDec {
                            target: Box::new(e),
                            inc: false,
                            post: true,
                        },
                        line,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            TokenKind::IntLit(v) => Ok(Expr {
                kind: ExprKind::IntLit(v),
                line,
            }),
            TokenKind::FltLit(v) => Ok(Expr {
                kind: ExprKind::FltLit(v),
                line,
            }),
            TokenKind::CharLit(v) => Ok(Expr {
                kind: ExprKind::CharLit(v),
                line,
            }),
            TokenKind::StrLit(s) => Ok(Expr {
                kind: ExprKind::StrLit(s),
                line,
            }),
            TokenKind::Ident(name) => {
                if *self.peek() == TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.assignment()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen, "')'")?;
                    }
                    Ok(Expr {
                        kind: ExprKind::Call(name, args),
                        line,
                    })
                } else {
                    Ok(Expr {
                        kind: ExprKind::Var(name),
                        line,
                    })
                }
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            other => Err(CompileError::new(
                line,
                format!("expected expression, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_livermore_loop5() {
        let src = r"
            double x[100000]; double y[100000]; double z[100000];
            void loop5(int n) {
                int i;
                for (i = 2; i < n; i++)
                    x[i] = z[i] * (y[i] - x[i-1]);
            }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.items.len(), 4);
        match &p.items[3] {
            Item::Func(f) => {
                assert_eq!(f.name, "loop5");
                assert_eq!(f.params.len(), 1);
                assert_eq!(f.body.len(), 2);
            }
            _ => panic!("expected function"),
        }
    }

    #[test]
    fn precedence() {
        let p = parse("int f() { return 1 + 2 * 3 << 1 < 4 && 5; }").unwrap();
        // shape check: && at the top
        match &p.items[0] {
            Item::Func(f) => match &f.body[0] {
                Stmt::Return(Some(e), _) => match &e.kind {
                    ExprKind::Binary(BinaryOp::LogAnd, _, _) => {}
                    other => panic!("expected &&, got {other:?}"),
                },
                other => panic!("unexpected {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn pointers_and_postfix() {
        let p = parse("int f(char *s) { while (*s++) ; return 0; }").unwrap();
        match &p.items[0] {
            Item::Func(f) => {
                assert_eq!(f.params[0].0, Type::Ptr(Box::new(Type::Char)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn array_param_decays() {
        let p = parse("double dot(double a[], double b[], int n) { return 0.0; }").unwrap();
        match &p.items[0] {
            Item::Func(f) => {
                assert_eq!(f.params[0].0, Type::Ptr(Box::new(Type::Double)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn globals_with_initializers() {
        let p = parse(r#"int tab[] = {1, 2, 3}; char msg[] = "hi"; double pi = 3.14;"#).unwrap();
        match &p.items[0] {
            Item::Global { ty, .. } => assert_eq!(*ty, Type::Array(Box::new(Type::Int), 3)),
            _ => unreachable!(),
        }
        match &p.items[1] {
            // "hi" plus NUL
            Item::Global { ty, .. } => assert_eq!(*ty, Type::Array(Box::new(Type::Char), 3)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn casts_and_ternary() {
        parse("double f(int n) { return (double) (n > 0 ? n : -n); }").unwrap();
    }

    #[test]
    fn error_reporting_has_lines() {
        let err = parse("int f() {\n  return 1 +;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn do_while_and_for_variants() {
        parse("void f() { int i; do i++; while (i < 10); for (;;) break; }").unwrap();
    }
}
