//! Mini-C front end.
//!
//! The paper's compiler is a full C compiler (vpcc). This crate implements
//! the subset of C that the paper's examples and benchmark programs need —
//! `int`/`char`/`double`, one-dimensional arrays, pointers, functions with
//! recursion, and the full statement and expression grammar — and lowers it
//! to the *generic RTL* form of [`wm_ir`]: "naive but correct code for a
//! simple abstract machine", exactly the paper's first compilation strategy.
//! All optimization is deferred to the `wm-opt` crate and all machine
//! specifics to the `wm-target` crate.
//!
//! # Example
//!
//! ```
//! let src = "int add(int a, int b) { return a + b; }";
//! let module = wm_frontend::compile(src).expect("valid mini-C");
//! assert!(module.function_named("add").is_some());
//! ```

mod ast;
mod error;
mod lexer;
mod lower;
mod parser;

pub use ast::{
    AssignOp, BinaryOp, Expr, ExprKind, FuncDecl, Init, Item, Program, Stmt, Type, UnaryOp,
};
pub use error::CompileError;
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::parse;

use wm_ir::Module;

/// Compile mini-C source text into a generic-RTL [`Module`].
///
/// This runs the lexer, parser and lowering; the result is unoptimized
/// ("naive but correct") code ready for the optimizer.
///
/// # Errors
///
/// Returns a [`CompileError`] carrying a line number and message for
/// lexical, syntactic or semantic errors.
pub fn compile(source: &str) -> Result<Module, CompileError> {
    let program = parse(source)?;
    lower::lower(&program)
}
