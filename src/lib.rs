//! Umbrella crate for the WM streaming-compiler reproduction.
//!
//! The real functionality lives in the workspace crates; this package exists
//! to host the repository-level integration tests (`tests/`) and runnable
//! examples (`examples/`). It simply re-exports the public facade.

pub use wm_stream::*;
